"""Behavioural tests for the guest kernel execution engine."""

import pytest

from repro.guestos.task import TASK_EXITED, TASK_SLEEPING
from repro.simkernel import Simulator
from repro.simkernel.units import MS, SEC, US
from repro.workloads import (
    Acquire,
    Barrier,
    BarrierWait,
    BoundedQueue,
    Compute,
    Mark,
    Mutex,
    QueueGet,
    QueuePut,
    Release,
    Sleep,
    SpinLock,
    YieldCpu,
)

from conftest import single_vm_machine


class TestBasicExecution:
    def test_compute_takes_exact_time(self, sim):
        machine, vm, kernel = single_vm_machine(sim)
        done = []
        kernel.spawn('t', iter([Compute(7 * MS)]),
                     on_exit=lambda t, now: done.append(now))
        sim.run_until(1 * SEC)
        assert done == [7 * MS]

    def test_sequential_actions_accumulate(self, sim):
        machine, vm, kernel = single_vm_machine(sim)
        done = []
        kernel.spawn('t', iter([Compute(3 * MS), Compute(4 * MS)]),
                     on_exit=lambda t, now: done.append(now))
        sim.run_until(1 * SEC)
        assert done == [7 * MS]

    def test_task_cpu_accounting(self, sim):
        machine, vm, kernel = single_vm_machine(sim)
        task = kernel.spawn('t', iter([Compute(5 * MS)]))
        sim.run_until(1 * SEC)
        assert task.cpu_ns == 5 * MS
        assert task.state == TASK_EXITED

    def test_two_tasks_share_one_vcpu_fairly(self, sim):
        machine, vm, kernel = single_vm_machine(sim)

        def spin_forever():
            while True:
                yield Compute(1 * MS)
        a = kernel.spawn('a', spin_forever(), gcpu_index=0)
        b = kernel.spawn('b', spin_forever(), gcpu_index=0)
        sim.run_until(1 * SEC)
        assert abs(a.cpu_ns - b.cpu_ns) < 100 * MS
        assert a.cpu_ns + b.cpu_ns > 990 * MS

    def test_mark_callback_runs_at_sim_time(self, sim):
        machine, vm, kernel = single_vm_machine(sim)
        stamps = []
        program = iter([Compute(2 * MS),
                        Mark(lambda t, now: stamps.append(now)),
                        Compute(1 * MS)])
        kernel.spawn('t', program)
        sim.run_until(1 * SEC)
        assert stamps == [2 * MS]

    def test_zero_compute_is_legal(self, sim):
        machine, vm, kernel = single_vm_machine(sim)
        done = []
        kernel.spawn('t', iter([Compute(0), Compute(1 * MS)]),
                     on_exit=lambda t, now: done.append(now))
        sim.run_until(1 * SEC)
        assert done == [1 * MS]

    def test_yield_with_empty_queue_continues(self, sim):
        machine, vm, kernel = single_vm_machine(sim)
        done = []
        kernel.spawn('t', iter([Compute(1 * MS), YieldCpu(),
                                Compute(1 * MS)]),
                     on_exit=lambda t, now: done.append(now))
        sim.run_until(1 * SEC)
        assert done == [2 * MS]

    def test_yield_rotates_to_other_task(self, sim):
        machine, vm, kernel = single_vm_machine(sim)
        order = []

        def yielder(name):
            yield Compute(100 * US)
            order.append(name + '.before')
            yield YieldCpu()
            order.append(name + '.after')
            yield Compute(100 * US)
        kernel.spawn('a', yielder('a'), gcpu_index=0)
        kernel.spawn('b', yielder('b'), gcpu_index=0)
        sim.run_until(1 * SEC)
        assert set(order) == {'a.before', 'a.after', 'b.before', 'b.after'}


class TestSleep:
    def test_sleep_duration(self, sim):
        machine, vm, kernel = single_vm_machine(sim)
        done = []
        kernel.spawn('t', iter([Compute(1 * MS), Sleep(10 * MS),
                                Compute(1 * MS)]),
                     on_exit=lambda t, now: done.append(now))
        sim.run_until(1 * SEC)
        assert done == [12 * MS]

    def test_sleeping_task_burns_no_cpu(self, sim):
        machine, vm, kernel = single_vm_machine(sim)
        task = kernel.spawn('t', iter([Sleep(50 * MS)]))
        sim.run_until(1 * SEC)
        assert task.cpu_ns == 0

    def test_vcpu_blocks_while_all_sleep(self, sim):
        machine, vm, kernel = single_vm_machine(sim)
        kernel.spawn('t', iter([Sleep(100 * MS), Compute(1 * MS)]))
        sim.run_until(50 * MS)
        assert vm.vcpus[0].is_blocked

    def test_repeated_sleep_cycles(self, sim):
        """Regression: a blocking Sleep must clear the action so the
        wakeup does not re-arm the same sleep forever."""
        machine, vm, kernel = single_vm_machine(sim)

        def cycler():
            for __ in range(5):
                yield Sleep(10 * MS)
                yield Compute(1 * MS)
        task = kernel.spawn('t', cycler())
        sim.run_until(1 * SEC)
        assert task.state == TASK_EXITED
        assert task.cpu_ns == 5 * MS


class TestMutexBehaviour:
    def test_mutual_exclusion_serializes_critical_sections(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        m = Mutex()
        active = [0]
        overlaps = []

        def enter(t, now):
            active[0] += 1
            overlaps.append(active[0])

        def leave(t, now):
            active[0] -= 1

        def worker():
            for __ in range(20):
                yield Compute(200 * US)
                yield Acquire(m)
                yield Mark(enter)
                yield Compute(100 * US)
                yield Mark(leave)
                yield Release(m)
        kernel.spawn('a', worker(), gcpu_index=0)
        kernel.spawn('b', worker(), gcpu_index=1)
        sim.run_until(1 * SEC)
        assert overlaps and max(overlaps) == 1

    def test_waiter_blocks_and_wakes(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        m = Mutex()
        done = []
        kernel.spawn('holder',
                     iter([Acquire(m), Compute(20 * MS), Release(m)]),
                     gcpu_index=0)
        kernel.spawn('waiter',
                     iter([Compute(1 * MS), Acquire(m), Release(m),
                           Compute(1 * MS)]),
                     gcpu_index=1,
                     on_exit=lambda t, now: done.append(now))
        sim.run_until(1 * SEC)
        # Waiter acquires at ~20ms after the holder releases.
        assert done and 20 * MS <= done[0] <= 23 * MS

    def test_fifo_handoff_order(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=4, n_vcpus=4)
        m = Mutex()
        order = []

        def worker(name, delay):
            yield Compute(delay)
            yield Acquire(m)
            yield Mark(lambda t, now: order.append(name))
            yield Compute(5 * MS)
            yield Release(m)
        for i in range(4):
            kernel.spawn('w%d' % i, worker('w%d' % i, (i + 1) * 100 * US),
                         gcpu_index=i)
        sim.run_until(1 * SEC)
        assert order == ['w0', 'w1', 'w2', 'w3']


class TestSpinLockBehaviour:
    def test_spinner_burns_cpu_while_waiting(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        lock = SpinLock()
        kernel.spawn('holder',
                     iter([Acquire(lock), Compute(20 * MS), Release(lock)]),
                     gcpu_index=0)
        spinner = kernel.spawn(
            'spinner', iter([Compute(1 * MS), Acquire(lock),
                             Release(lock)]),
            gcpu_index=1)
        sim.run_until(100 * MS)
        # ~1ms compute + ~19ms spinning, all charged as CPU.
        assert spinner.cpu_ns > 15 * MS

    def test_spin_grant_resumes_immediately(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        lock = SpinLock()
        done = []
        kernel.spawn('holder',
                     iter([Acquire(lock), Compute(10 * MS), Release(lock)]),
                     gcpu_index=0)
        kernel.spawn('spinner',
                     iter([Compute(1 * MS), Acquire(lock), Compute(1 * MS),
                           Release(lock)]),
                     gcpu_index=1,
                     on_exit=lambda t, now: done.append(now))
        sim.run_until(1 * SEC)
        assert done and done[0] == 11 * MS


class TestBarrierBehaviour:
    @pytest.mark.parametrize('mode', ['block', 'spin'])
    def test_barrier_synchronizes(self, sim, mode):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        bar = Barrier(2, mode=mode)
        passed = []

        def worker(name, work_ns):
            yield Compute(work_ns)
            yield BarrierWait(bar)
            yield Mark(lambda t, now: passed.append((name, now)))
            yield Compute(1 * MS)
        kernel.spawn('fast', worker('fast', 1 * MS), gcpu_index=0)
        kernel.spawn('slow', worker('slow', 9 * MS), gcpu_index=1)
        sim.run_until(1 * SEC)
        times = dict(passed)
        assert times['fast'] == times['slow'] == 9 * MS

    def test_blocking_barrier_idles_vcpu(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        bar = Barrier(2, mode='block')
        kernel.spawn('fast', iter([Compute(1 * MS), BarrierWait(bar)]),
                     gcpu_index=0)
        kernel.spawn('slow', iter([Compute(50 * MS), BarrierWait(bar)]),
                     gcpu_index=1)
        sim.run_until(20 * MS)
        assert vm.vcpus[0].is_blocked        # deceptive idleness
        assert vm.vcpus[1].is_running

    def test_spin_barrier_keeps_vcpu_busy(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        bar = Barrier(2, mode='spin')
        kernel.spawn('fast', iter([Compute(1 * MS), BarrierWait(bar)]),
                     gcpu_index=0)
        kernel.spawn('slow', iter([Compute(50 * MS), BarrierWait(bar)]),
                     gcpu_index=1)
        sim.run_until(20 * MS)
        assert vm.vcpus[0].is_running        # burning cycles


class TestPipelineQueues:
    def test_producer_consumer_flow(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        q = BoundedQueue(2)
        consumed = []

        def producer():
            for i in range(5):
                yield Compute(1 * MS)
                yield QueuePut(q, i)

        def consumer():
            for __ in range(5):
                item = yield QueueGet(q)
                consumed.append(item)
                yield Compute(500 * US)
        kernel.spawn('p', producer(), gcpu_index=0)
        kernel.spawn('c', consumer(), gcpu_index=1)
        sim.run_until(1 * SEC)
        assert consumed == [0, 1, 2, 3, 4]

    def test_bounded_capacity_throttles_producer(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        q = BoundedQueue(1)
        p_done = []

        def producer():
            for i in range(3):
                yield QueuePut(q, i)
            yield Compute(100 * US)

        def slow_consumer():
            for __ in range(3):
                yield Compute(10 * MS)
                yield QueueGet(q)
        kernel.spawn('p', producer(), gcpu_index=0,
                     on_exit=lambda t, now: p_done.append(now))
        kernel.spawn('c', slow_consumer(), gcpu_index=1)
        sim.run_until(1 * SEC)
        # Producer must wait for the consumer to drain: ≥ 2 consumer
        # periods before its last put completes.
        assert p_done and p_done[0] >= 20 * MS


class TestBalancing:
    def test_idle_vcpu_pulls_ready_work(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)

        def chunk():
            yield Compute(50 * MS)
        # Three tasks on gcpu0, nothing on gcpu1: the idle CPU should
        # pull so total completion beats serial execution.
        done = []
        for i in range(3):
            kernel.spawn('t%d' % i, chunk(), gcpu_index=0,
                         on_exit=lambda t, now: done.append(now))
        sim.run_until(1 * SEC)
        assert max(done) <= 110 * MS  # serial would be 150ms

    def test_nohz_kick_revives_idle_vcpu(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)

        def long_chunk():
            yield Compute(100 * MS)
        # gcpu1 idles (nothing spawned there); queue two extra tasks on
        # gcpu0 *after* gcpu1 has gone idle-blocked.
        kernel.spawn('a', long_chunk(), gcpu_index=0)
        sim.run_until(5 * MS)
        assert vm.vcpus[1].is_blocked
        done = []
        kernel.spawn('b', long_chunk(), gcpu_index=0,
                     on_exit=lambda t, now: done.append(now))
        kernel.spawn('c', long_chunk(), gcpu_index=0,
                     on_exit=lambda t, now: done.append(now))
        sim.run_until(1 * SEC)
        assert max(done) < 250 * MS  # serial on one vCPU would be ~300ms

    def test_wake_prefers_previous_idle_cpu(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)

        def napper():
            for __ in range(3):
                yield Compute(1 * MS)
                yield Sleep(5 * MS)
        task = kernel.spawn('n', napper(), gcpu_index=1)
        sim.run_until(1 * SEC)
        assert task.migrations == 0
        assert task.gcpu is kernel.gcpus[1]


class TestExitAndErrors:
    def test_exit_callback_fires_once(self, sim):
        machine, vm, kernel = single_vm_machine(sim)
        calls = []
        kernel.spawn('t', iter([Compute(1 * MS)]),
                     on_exit=lambda t, now: calls.append(now))
        sim.run_until(1 * SEC)
        assert len(calls) == 1

    def test_unknown_action_raises(self, sim):
        machine, vm, kernel = single_vm_machine(sim)
        with pytest.raises(TypeError):
            kernel.spawn('t', iter([object()]))

    def test_zero_time_action_livelock_detected(self, sim):
        machine, vm, kernel = single_vm_machine(sim)

        def endless_marks():
            while True:
                yield Mark(lambda t, now: None)
        with pytest.raises(RuntimeError):
            kernel.spawn('t', endless_marks())

    def test_empty_program_exits_immediately(self, sim):
        machine, vm, kernel = single_vm_machine(sim)
        task = kernel.spawn('t', iter(()))
        sim.run_until(1 * MS)
        assert task.state == TASK_EXITED


class TestFreezeSemantics:
    """The semantic gap itself: a preempted vCPU freezes its current
    task, which stays 'running' and untouchable."""

    def _setup(self, sim):
        from conftest import build_machine, build_vm
        machine = build_machine(sim, n_pcpus=1)
        vm, kernel = build_vm(sim, machine, 'par', pinning=[0])
        hvm, hk = build_vm(sim, machine, 'hog', pinning=[0])

        def hog():
            while True:
                yield Compute(10 * MS)
        hk.spawn('hog', hog())
        machine.start()
        return machine, vm, kernel

    def test_frozen_task_makes_no_progress(self, sim):
        machine, vm, kernel = self._setup(sim)
        task = kernel.spawn('t', iter([Compute(100 * MS)]))
        sim.run_until(1 * SEC)
        # With a competing hog the task needs ~200ms wall time.
        assert task.state == TASK_EXITED
        assert task.finished_at > 150 * MS

    def test_frozen_task_state_stays_running(self, sim):
        machine, vm, kernel = self._setup(sim)
        task = kernel.spawn('t', iter([Compute(500 * MS)]))
        # Find a moment when the vCPU is preempted mid-execution.
        for __ in range(100):
            sim.run_until(sim.now + 5 * MS)
            if vm.vcpus[0].is_runnable and task.cpu_ns > 0:
                break
        assert vm.vcpus[0].is_runnable
        assert task.state == 'running'       # the lie the guest believes
        assert kernel.gcpus[0].current is task
