"""Unit tests for the program builders (action-sequence generators)."""

from repro.simkernel import Simulator
from repro.simkernel.units import MS
from repro.workloads import (
    Acquire,
    BarrierWait,
    Compute,
    Mutex,
    QueueGet,
    QueuePut,
    Release,
    Barrier,
    BoundedQueue,
)
from repro.workloads.program import (
    PIPELINE_STOP,
    barrier_phases,
    compute_chunks,
    cpu_hog,
    mutex_loop,
    pipeline_source,
    work_steal_worker,
)


def drain(generator, limit=10_000):
    actions = []
    for action in generator:
        actions.append(action)
        if len(actions) >= limit:
            break
    return actions


class TestSimplePrograms:
    def test_cpu_hog_never_ends(self):
        actions = drain(cpu_hog(5 * MS), limit=50)
        assert len(actions) == 50
        assert all(isinstance(a, Compute) for a in actions)

    def test_compute_chunks_total(self):
        actions = drain(compute_chunks(10 * MS, 3 * MS))
        assert sum(a.duration_ns for a in actions) == 10 * MS
        assert [a.duration_ns for a in actions] == [3 * MS, 3 * MS,
                                                    3 * MS, 1 * MS]

    def test_compute_chunks_zero(self):
        assert drain(compute_chunks(0, 1 * MS)) == []


class TestBarrierPhases:
    def test_structure(self):
        sim = Simulator(seed=0)
        barrier = Barrier(2)
        actions = drain(barrier_phases(sim, 's', barrier, 5 * MS, 3))
        kinds = [type(a).__name__ for a in actions]
        assert kinds == ['Compute', 'BarrierWait'] * 3

    def test_critical_section_inserted(self):
        sim = Simulator(seed=0)
        barrier = Barrier(2)
        mutex = Mutex()
        actions = drain(barrier_phases(sim, 's', barrier, 5 * MS, 2,
                                       critical=(mutex, 100)))
        kinds = [type(a).__name__ for a in actions]
        assert kinds == ['Compute', 'Acquire', 'Compute', 'Release',
                         'BarrierWait'] * 2

    def test_region_boundary_interleaving(self):
        sim = Simulator(seed=0)
        spin = Barrier(2, mode='spin')
        region = Barrier(2, mode='block')
        actions = drain(barrier_phases(sim, 's', spin, 5 * MS, 6,
                                       region_barrier=region,
                                       region_every=3))
        barriers = [a.barrier for a in actions
                    if isinstance(a, BarrierWait)]
        assert barriers == [spin, spin, region, spin, spin, region]

    def test_jitter_bounded(self):
        sim = Simulator(seed=0)
        barrier = Barrier(2)
        actions = drain(barrier_phases(sim, 's', barrier, 10 * MS, 20,
                                       jitter=0.2))
        for action in actions:
            if isinstance(action, Compute):
                assert 8 * MS <= action.duration_ns <= 12 * MS

    def test_phase_callback(self):
        sim = Simulator(seed=0)
        barrier = Barrier(1)
        stamps = []
        list(barrier_phases(sim, 's', barrier, 1 * MS, 4,
                            on_phase=stamps.append))
        assert len(stamps) == 4


class TestMutexLoop:
    def test_structure(self):
        sim = Simulator(seed=0)
        mutex = Mutex()
        actions = drain(mutex_loop(sim, 's', mutex, 4 * MS, 100, 2))
        kinds = [type(a).__name__ for a in actions]
        assert kinds == ['Compute', 'Acquire', 'Compute', 'Release'] * 2
        criticals = [a for a in actions if isinstance(a, Compute)][1::2]
        assert all(c.duration_ns == 100 for c in criticals)


class TestWorkStealing:
    def test_pool_drains_across_workers(self):
        sim = Simulator(seed=0)
        pool = [1 * MS] * 10
        w1 = work_steal_worker(sim, pool)
        w2 = work_steal_worker(sim, pool)
        taken = 0
        # Alternate fetches, as two threads would.
        gens = [w1, w2]
        while True:
            progressed = False
            for g in gens:
                try:
                    next(g)
                    taken += 1
                    progressed = True
                except StopIteration:
                    pass
            if not progressed:
                break
        assert taken == 10
        assert pool == []


class TestPipelinePrograms:
    def test_source_emits_items_then_stops(self):
        sim = Simulator(seed=0)
        queue = BoundedQueue(100)
        counter = [0]
        actions = drain(pipeline_source(sim, 's', queue, 3, 1 * MS, 0.0,
                                        counter, n_source_threads=1,
                                        next_stage_threads=2))
        puts = [a for a in actions if isinstance(a, QueuePut)]
        assert len(puts) == 5                      # 3 items + 2 stops
        assert [p.item for p in puts[-2:]] == [PIPELINE_STOP,
                                               PIPELINE_STOP]

    def test_only_last_source_sends_stops(self):
        sim = Simulator(seed=0)
        queue = BoundedQueue(100)
        counter = [0]
        first = drain(pipeline_source(sim, 's1', queue, 1, 1 * MS, 0.0,
                                      counter, n_source_threads=2,
                                      next_stage_threads=1))
        second = drain(pipeline_source(sim, 's2', queue, 1, 1 * MS, 0.0,
                                       counter, n_source_threads=2,
                                       next_stage_threads=1))
        stops_first = [a for a in first if isinstance(a, QueuePut)
                       and a.item is PIPELINE_STOP]
        stops_second = [a for a in second if isinstance(a, QueuePut)
                        and a.item is PIPELINE_STOP]
        assert len(stops_first) == 0
        assert len(stops_second) == 1
