"""Edge-case tests for the experiment harness."""

import pytest

from repro.experiments import InterferenceSpec, run_parallel
from repro.experiments.harness import ParallelRunResult
from repro.simkernel.units import MS


class TestTimeouts:
    def test_timeout_returns_incomplete_result(self):
        """A run that cannot finish inside the budget reports TIMEOUT
        instead of hanging."""
        result = run_parallel('blackscholes', 'vanilla',
                              InterferenceSpec('hogs', 4), scale=1.0,
                              timeout_ns=50 * MS)
        assert not result.completed
        assert result.makespan_ns is None
        assert 'TIMEOUT' in repr(result)

    def test_timeout_still_reports_utilization(self):
        result = run_parallel('blackscholes', 'vanilla',
                              InterferenceSpec('hogs', 4), scale=1.0,
                              timeout_ns=50 * MS)
        assert result.utilization > 0


class TestRunResultShape:
    def test_result_carries_scenario_and_metrics(self):
        result = run_parallel('swaptions', 'vanilla', scale=0.05)
        assert result.completed
        assert result.metrics.vms['fg'].run_ns > 0
        assert result.scenario.fg_vm.name == 'fg'
        assert result.workload.is_done

    def test_repr_shows_makespan(self):
        result = run_parallel('swaptions', 'vanilla', scale=0.05)
        assert 'swaptions/vanilla' in repr(result)

    def test_app_interference_width_zero_means_none(self):
        result = run_parallel('swaptions', 'vanilla',
                              InterferenceSpec('hogs', 0), scale=0.05)
        assert result.bg_rates == []
        assert len(result.scenario.bg_kernels) == 0

    def test_custom_thread_count(self):
        result = run_parallel('swaptions', 'vanilla', scale=0.05,
                              n_threads=2)
        assert len(result.workload.tasks) == 2
