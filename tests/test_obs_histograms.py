"""Unit tests for the log-bucketed histogram and the metrics registry."""

import pytest

from repro.obs.histograms import (
    CounterMetric,
    GaugeMetric,
    LogHistogram,
    MetricsRegistry,
    SUB_BUCKETS,
)
from repro.simkernel.units import US


class TestLogHistogram:
    def test_empty(self):
        h = LogHistogram('x')
        assert h.count == 0
        assert h.mean() == 0.0
        assert h.percentile(50) == 0.0
        assert h.summary()['count'] == 0

    def test_single_value_exact(self):
        h = LogHistogram('x')
        h.record(23 * US)
        assert h.min == h.max == 23 * US
        assert h.p50() == 23 * US
        assert h.p99() == 23 * US

    def test_small_values_are_exact(self):
        h = LogHistogram('x')
        for v in (0, 1, 5, 15):
            h.record(v)
        assert h._bucket_index(0) == 0
        assert h._bucket_index(SUB_BUCKETS - 1) == SUB_BUCKETS - 1
        assert h.min == 0
        assert h.max == 15

    def test_negative_rejected(self):
        h = LogHistogram('x')
        with pytest.raises(ValueError):
            h.record(-1)

    def test_bucket_bounds_contain_value(self):
        for value in (3, 17, 100, 1023, 20_000, 23_456, 10**9):
            index = LogHistogram._bucket_index(value)
            low, high = LogHistogram._bucket_bounds(index)
            assert low <= value < high

    def test_relative_error_in_sa_band(self):
        # The paper's 20-26 us band must be resolved to ~1 us, i.e.
        # better than 1/SUB_BUCKETS relative error.
        h = LogHistogram('x')
        for us in range(20, 27):
            for __ in range(100):
                h.record(us * US)
        assert 20 * US <= h.p50() <= 26 * US
        assert abs(h.p50() - 23 * US) <= 2 * US
        assert h.p99() <= 26 * US
        assert h.percentile(0) == 20 * US
        assert h.percentile(100) == 26 * US

    def test_percentile_clamped_to_extremes(self):
        h = LogHistogram('x')
        h.record(1000)
        h.record(1001)
        assert h.percentile(0) >= 1000
        assert h.percentile(100) <= 1001

    def test_percentile_range_checked(self):
        h = LogHistogram('x')
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_merge(self):
        a = LogHistogram('a')
        b = LogHistogram('b')
        for v in (10, 20, 30):
            a.record(v * US)
        for v in (40, 50):
            b.record(v * US)
        a.merge(b)
        assert a.count == 5
        assert a.min == 10 * US
        assert a.max == 50 * US

    def test_merge_empty_is_noop(self):
        a = LogHistogram('a')
        a.record(5)
        a.merge(LogHistogram('b'))
        assert a.count == 1

    def test_copy_is_independent(self):
        a = LogHistogram('a')
        a.record(5)
        b = a.copy()
        b.record(6)
        assert a.count == 1
        assert b.count == 2


class TestMetrics:
    def test_counter_monotonic(self):
        c = CounterMetric('c')
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        g = GaugeMetric('g')
        g.set(3)
        g.set(1)
        assert g.value == 1


class TestMetricsRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter('a') is r.counter('a')
        assert len(r) == 1

    def test_kind_is_sticky(self):
        r = MetricsRegistry()
        r.counter('a')
        with pytest.raises(TypeError):
            r.histogram('a')

    def test_prefix_views(self):
        r = MetricsRegistry()
        r.counter('irs.sa_sent').inc(3)
        r.counter('hv.wakes').inc(1)
        r.histogram('sa.offer').record(23 * US)
        assert r.counter_values(prefixes=('irs.',)) == {'irs.sa_sent': 3}
        assert list(r.histogram_summaries()) == ['sa.offer']
        assert r.names(kind='counter') == ['hv.wakes', 'irs.sa_sent']

    def test_snapshot_is_frozen(self):
        r = MetricsRegistry()
        r.counter('c').inc(1)
        r.histogram('h').record(10)
        snap = r.snapshot()
        r.counter('c').inc(10)
        r.histogram('h').record(20)
        assert snap.get('c').value == 1
        assert snap.get('h').count == 1

    def test_contains_iter_clear(self):
        r = MetricsRegistry()
        r.gauge('g').set(1)
        assert 'g' in r
        assert list(r) == ['g']
        r.clear()
        assert len(r) == 0
