"""Tests for the declarative run-spec pipeline: RunSpec hashing, the
serial/parallel executors, and the determinism-keyed result cache."""

import pickle

import pytest

from repro.experiments import (
    InterferenceSpec,
    ParallelRunner,
    ResultCache,
    RunError,
    RunSpec,
    SerialExecutor,
    SpecError,
    parallel_spec,
    pipeline_counters,
    probe_spec,
    run_specs,
    server_spec,
    set_default_cache,
    set_default_executor,
    spec_from_dict,
)
from repro.experiments.cache import code_fingerprint
from repro.experiments.figures import fig5, fig10


@pytest.fixture(autouse=True)
def _reset_pipeline_defaults():
    """The CLI installs module-global executor/cache defaults; keep
    tests isolated from each other."""
    yield
    set_default_executor(None)
    set_default_cache(None)


def _counters():
    return pipeline_counters()


def _delta(after, before, name):
    return after.get(name, 0) - before.get(name, 0)


SMALL = parallel_spec('streamcluster', 'irs', InterferenceSpec('hogs', 1),
                      scale=0.15)


class TestRunSpec:
    def test_frozen_and_hashable(self):
        spec = parallel_spec('x264', 'irs', InterferenceSpec('hogs', 2),
                             seed=3, scale=0.5)
        same = parallel_spec('x264', 'irs', InterferenceSpec('hogs', 2),
                             seed=3, scale=0.5)
        assert spec == same
        assert hash(spec) == hash(same)
        assert len({spec, same}) == 1
        with pytest.raises(Exception):
            spec.seed = 4

    def test_picklable(self):
        spec = server_spec('specjbb', 'irs', n_hogs=2)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_cache_token_changes_with_any_field(self):
        base = parallel_spec('x264', 'irs', InterferenceSpec('hogs', 2))
        assert base.cache_token() == parallel_spec(
            'x264', 'irs', InterferenceSpec('hogs', 2)).cache_token()
        for changed in (base.replace(seed=1), base.replace(scale=0.9),
                        base.replace(strategy='ple'),
                        base.replace(faults='sa-loss-10'),
                        base.replace(spans=True)):
            assert changed.cache_token() != base.cache_token()

    def test_interference_normalized(self):
        spec = parallel_spec('UA', interference=InterferenceSpec(
            'hogs', 2, n_vms=3))
        assert spec.interference == ('hogs', 2, 3)
        assert spec.interference_spec.width == 2
        assert spec.interference_spec.n_vms == 3

    def test_irs_overrides_sorted(self):
        a = parallel_spec('UA', 'irs', irs={'sa_ack_retries': 1,
                                            'migrator_retries': 0})
        b = parallel_spec('UA', 'irs', irs=(('migrator_retries', 0),
                                            ('sa_ack_retries', 1)))
        assert a == b

    def test_validation(self):
        with pytest.raises(SpecError):
            RunSpec(app='UA', kind='quantum')
        with pytest.raises(SpecError):
            RunSpec(app='UA', strategy='quantum')
        with pytest.raises(SpecError):
            RunSpec(app='memcached', kind='server')
        with pytest.raises(SpecError):
            RunSpec(app='UA', interference=('hogs', 1))

    def test_spec_from_dict(self):
        spec = spec_from_dict({
            'app': 'streamcluster', 'strategy': 'irs', 'seed': 1,
            'machine': {'n_pcpus': 4, 'fg_vcpus': 4, 'pinned': True},
            'interference': {'kind': 'hogs', 'width': 1},
            'workload': {'scale': 0.15},
        })
        assert spec.app == 'streamcluster'
        assert spec.strategy == 'irs'
        assert spec.interference == ('hogs', 1, 1)
        assert spec.scale == 0.15


class TestExecutors:
    def test_serial_matches_direct_harness(self):
        from repro.experiments import run_parallel
        direct = run_parallel('streamcluster', 'irs',
                              InterferenceSpec('hogs', 1), scale=0.15)
        outcome = run_specs([SMALL], executor=SerialExecutor(),
                            cache=None)[0]
        assert outcome.makespan_ns == direct.makespan_ns
        assert outcome.utilization == direct.utilization

    def test_deterministic_result_ordering(self):
        specs = [SMALL.replace(seed=seed) for seed in (3, 1, 2, 0)]
        outcomes = run_specs(specs, executor=ParallelRunner(jobs=4),
                             cache=None)
        assert [o.spec.seed for o in outcomes] == [3, 1, 2, 0]

    def test_parallel_matches_serial_outcomes(self):
        specs = [SMALL.replace(seed=seed) for seed in range(3)]
        serial = run_specs(specs, executor=SerialExecutor(), cache=None)
        parallel = run_specs(specs, executor=ParallelRunner(jobs=3),
                             cache=None)
        assert ([o.makespan_ns for o in serial]
                == [o.makespan_ns for o in parallel])
        assert ([o.utilization for o in serial]
                == [o.utilization for o in parallel])

    def test_duplicate_specs_run_once(self):
        before = _counters()
        outcomes = run_specs([SMALL, SMALL, SMALL], cache=None)
        after = _counters()
        assert _delta(after, before, 'executor.dispatched') == 1
        assert len(outcomes) == 3
        assert outcomes[0].makespan_ns == outcomes[2].makespan_ns

    def test_probe_and_server_kinds(self):
        probe, server = run_specs(
            [probe_spec(1, seed=0),
             server_spec('specjbb', 'vanilla', n_hogs=1,
                         measure_ns=500 * 10**6)],
            cache=None)
        assert probe.probe_latency_ns > 0
        assert server.throughput > 50
        assert server.latency_summary['p99'] > 0

    def test_crashing_worker_surfaces_failing_spec(self):
        good = SMALL
        bad = parallel_spec('no-such-benchmark', 'vanilla')
        with pytest.raises(RunError) as excinfo:
            run_specs([good, bad], executor=ParallelRunner(jobs=2),
                      cache=None)
        assert excinfo.value.spec == bad
        assert 'no-such-benchmark' in str(excinfo.value)

    def test_serial_crash_names_spec_too(self):
        bad = parallel_spec('no-such-benchmark', 'vanilla')
        with pytest.raises(RunError) as excinfo:
            run_specs([bad], executor=SerialExecutor(), cache=None)
        assert excinfo.value.spec == bad


class TestFigureEquivalence:
    """Acceptance: ParallelRunner and SerialExecutor produce
    byte-identical figure tables, and a cached second invocation does
    not dispatch a single simulation."""

    def test_fig5_quick_parallel_bit_identical(self):
        serial = fig5(quick=True).table()
        set_default_executor(ParallelRunner(jobs=4))
        parallel = fig5(quick=True).table()
        assert parallel == serial

    def test_fig10_quick_parallel_bit_identical(self):
        serial = fig10(quick=True).table()
        set_default_executor(ParallelRunner(jobs=4))
        parallel = fig10(quick=True).table()
        assert parallel == serial

    def test_fig5_quick_cached_second_run_is_free(self, tmp_path):
        set_default_cache(ResultCache(root=str(tmp_path)))
        first = fig5(quick=True).table()
        mid = _counters()
        second = fig5(quick=True).table()
        after = _counters()
        assert second == first
        assert _delta(after, mid, 'executor.dispatched') == 0
        assert _delta(after, mid, 'executor.runs') == 0
        assert _delta(after, mid, 'runcache.miss') == 0
        assert _delta(after, mid, 'runcache.hit') > 0

    def test_fig10_quick_cached_second_run_is_free(self, tmp_path):
        set_default_cache(ResultCache(root=str(tmp_path)))
        first = fig10(quick=True).table()
        mid = _counters()
        second = fig10(quick=True).table()
        after = _counters()
        assert second == first
        assert _delta(after, mid, 'executor.dispatched') == 0

    def test_cluster_figure_parallel_and_cache(self, tmp_path):
        from repro.experiments.figures import cluster_consolidation
        serial = cluster_consolidation(quick=True).table()
        set_default_executor(ParallelRunner(jobs=2))
        parallel = cluster_consolidation(quick=True).table()
        assert parallel == serial
        set_default_cache(ResultCache(root=str(tmp_path)))
        first = cluster_consolidation(quick=True).table()
        mid = _counters()
        second = cluster_consolidation(quick=True).table()
        after = _counters()
        assert second == first == serial
        assert _delta(after, mid, 'executor.dispatched') == 0


class TestResultCache:
    def test_hit_skips_simulation(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        before = _counters()
        first = run_specs([SMALL], cache=cache)[0]
        mid = _counters()
        assert _delta(mid, before, 'runcache.miss') == 1
        assert _delta(mid, before, 'executor.dispatched') == 1
        second = run_specs([SMALL], cache=cache)[0]
        after = _counters()
        assert _delta(after, mid, 'runcache.hit') == 1
        assert _delta(after, mid, 'executor.dispatched') == 0
        assert second.makespan_ns == first.makespan_ns
        assert second.metrics.vm_utilization('fg') == pytest.approx(
            first.metrics.vm_utilization('fg'))

    def test_spec_change_invalidates(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        run_specs([SMALL], cache=cache)
        before = _counters()
        run_specs([SMALL.replace(seed=5)], cache=cache)
        after = _counters()
        assert _delta(after, before, 'runcache.miss') == 1
        assert _delta(after, before, 'executor.dispatched') == 1

    def test_code_fingerprint_invalidates(self, tmp_path):
        old = ResultCache(root=str(tmp_path), fingerprint='old-code')
        run_specs([SMALL], cache=old)
        new = ResultCache(root=str(tmp_path), fingerprint='new-code')
        before = _counters()
        run_specs([SMALL], cache=new)
        after = _counters()
        assert _delta(after, before, 'runcache.miss') == 1
        assert _delta(after, before, 'executor.dispatched') == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        run_specs([SMALL], cache=cache)
        entries = list(tmp_path.glob('*.pkl'))
        assert len(entries) == 1
        entries[0].write_bytes(b'not a pickle')
        before = _counters()
        outcome = run_specs([SMALL], cache=cache)[0]
        after = _counters()
        assert _delta(after, before, 'runcache.miss') == 1
        assert outcome.completed
        # The corrupt entry was evicted and replaced by a fresh store.
        assert cache.load(SMALL) is not None

    def test_fingerprint_tracks_source(self, tmp_path):
        src = tmp_path / 'pkg'
        src.mkdir()
        (src / 'a.py').write_text('x = 1\n')
        first = code_fingerprint(str(src))
        assert code_fingerprint(str(src)) == first     # stable
        (src / 'a.py').write_text('x = 2\n')
        # Explicit roots are re-hashed every call (no stale memo): the
        # edit is observed without any cache-poking.
        assert code_fingerprint(str(src)) != first

    def test_fingerprint_covers_new_subpackages(self, tmp_path):
        # Regression: the fingerprint must cover files added in *new*
        # nested subpackages (e.g. repro/cluster/), or stale cache hits
        # would survive cluster-code edits.
        src = tmp_path / 'pkg'
        src.mkdir()
        (src / 'a.py').write_text('x = 1\n')
        base = code_fingerprint(str(src))
        sub = src / 'cluster' / 'deep'
        sub.mkdir(parents=True)
        (sub / 'placement.py').write_text('y = 1\n')
        grown = code_fingerprint(str(src))
        assert grown != base
        (sub / 'placement.py').write_text('y = 2\n')
        assert code_fingerprint(str(src)) != grown

    def test_fingerprint_ignores_pycache_and_hidden(self, tmp_path):
        src = tmp_path / 'pkg'
        src.mkdir()
        (src / 'a.py').write_text('x = 1\n')
        base = code_fingerprint(str(src))
        cache_dir = src / '__pycache__'
        cache_dir.mkdir()
        (cache_dir / 'a.cpython-311.py').write_text('junk\n')
        hidden = src / '.git'
        hidden.mkdir()
        (hidden / 'hook.py').write_text('junk\n')
        assert code_fingerprint(str(src)) == base
