"""EventLog ring, JSONL determinism, residency replay, and the
Prometheus-style exposition snapshot."""

import json

import pytest

from repro.obs.eventlog import (
    EVENT_MIGRATION_ABORT,
    EVENT_MIGRATION_DONE,
    EVENT_MIGRATION_START,
    EVENT_ORPHANED,
    EVENT_PARKED,
    EVENT_PLACE,
    EVENT_RECOVERED,
    EVENT_REJECT,
    EVENT_UNPARKED,
    EventLog,
    format_residency,
    read_jsonl,
    residency_timeline,
    vm_names,
)
from repro.obs.exposition import render_exposition, write_exposition
from repro.obs.histograms import MetricsRegistry


class TestRing:
    def test_append_returns_stored_dict(self):
        log = EventLog()
        event = log.append(10, EVENT_PLACE, vm='a', host='h0')
        assert event == {'t': 10, 'kind': EVENT_PLACE,
                         'vm': 'a', 'host': 'h0'}
        assert log.events == [event]

    def test_bounded_ring_drops_oldest_first(self):
        log = EventLog(max_events=4)
        for i in range(6):
            log.append(i, EVENT_PLACE, vm='vm%d' % i)
        assert len(log) == 4
        assert log.dropped == 2
        assert [e['t'] for e in log.events] == [2, 3, 4, 5]

    def test_max_events_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(max_events=0)

    def test_events_for_filters(self):
        log = EventLog()
        log.append(1, EVENT_PLACE, vm='a', host='h0')
        log.append(2, EVENT_PLACE, vm='b', host='h1')
        log.append(3, EVENT_ORPHANED, vm='a', host='h0')
        assert len(log.events_for(kind=EVENT_PLACE)) == 2
        assert len(log.events_for(vm='a')) == 2
        assert len(log.events_for(host='h0')) == 2
        assert log.events_for(kind=EVENT_PLACE, vm='b',
                              host='h1')[0]['t'] == 2

    def test_counts_sorted_by_kind(self):
        log = EventLog()
        log.append(1, 'z.kind')
        log.append(2, 'a.kind')
        log.append(3, 'z.kind')
        assert log.counts() == {'a.kind': 1, 'z.kind': 2}
        assert list(log.counts()) == ['a.kind', 'z.kind']

    def test_clear(self):
        log = EventLog(max_events=1)
        log.append(1, EVENT_PLACE)
        log.append(2, EVENT_PLACE)
        log.clear()
        assert len(log) == 0
        assert log.dropped == 0


class TestJsonl:
    def _populate(self, log):
        log.append(5, EVENT_PLACE, vm='a', host='h0',
                   scores={'h1': 1.0, 'h0': 0.0})
        log.append(9, EVENT_ORPHANED, vm='a', cause='host_crash',
                   host='h0', flow=3)

    def test_byte_identical_for_identical_streams(self):
        one, two = EventLog(), EventLog()
        self._populate(one)
        self._populate(two)
        assert one.to_jsonl() == two.to_jsonl()

    def test_lines_have_sorted_keys(self):
        log = EventLog()
        self._populate(log)
        for line in log.to_jsonl().splitlines():
            keys = list(json.loads(line))
            assert keys == sorted(keys)

    def test_round_trip(self, tmp_path):
        log = EventLog()
        self._populate(log)
        path = tmp_path / 'events.jsonl'
        assert log.write_jsonl(str(path)) == 2
        assert read_jsonl(str(path)) == log.to_dicts()

    def test_empty_log_writes_empty_file(self, tmp_path):
        path = tmp_path / 'events.jsonl'
        assert EventLog().write_jsonl(str(path)) == 0
        assert path.read_text() == ''


class TestResidency:
    def crash_story(self):
        """place -> migrate (rolled back) -> crash orphan -> re-place."""
        log = EventLog()
        log.append(1, EVENT_PLACE, vm='srv0', host='h0', policy='first_fit')
        log.append(2, EVENT_PLACE, vm='srv1', host='h1', policy='first_fit')
        log.append(3, EVENT_MIGRATION_START, vm='srv0', source='h0',
                   target='h1', reason='rebalance')
        log.append(4, EVENT_MIGRATION_ABORT, vm='srv0', source='h0',
                   target='h1', reason='target_crash', rollback=True)
        log.append(5, EVENT_ORPHANED, vm='srv0', cause='host_crash',
                   host='h0')
        log.append(6, EVENT_RECOVERED, vm='srv0', host='h1', attempts=1)
        return log

    def test_timeline_replays_the_crash_story(self):
        steps = residency_timeline(self.crash_story().events, 'srv0')
        assert [(s['step'], s['host']) for s in steps] == [
            ('place', 'h0'),
            ('migrate_out', 'h0'),
            ('rollback', 'h0'),
            ('orphaned', 'h0'),
            ('recovered', 'h1'),
        ]

    def test_timeline_only_sees_its_vm(self):
        steps = residency_timeline(self.crash_story().events, 'srv1')
        assert [(s['step'], s['host']) for s in steps] == [('place', 'h1')]

    def test_timeline_works_from_jsonl_alone(self, tmp_path):
        log = self.crash_story()
        path = tmp_path / 'events.jsonl'
        log.write_jsonl(str(path))
        replayed = residency_timeline(read_jsonl(str(path)), 'srv0')
        assert replayed == residency_timeline(log.events, 'srv0')

    def test_remaining_steps(self):
        log = EventLog()
        log.append(1, EVENT_REJECT, vm='a', reason='capacity')
        log.append(2, EVENT_MIGRATION_START, vm='b', source='h0',
                   target='h1')
        log.append(3, EVENT_MIGRATION_DONE, vm='b', source='h0',
                   target='h1')
        log.append(4, EVENT_MIGRATION_ABORT, vm='b', rollback=False)
        log.append(5, EVENT_PARKED, vm='b', attempts=3)
        log.append(6, EVENT_UNPARKED, vm='b', trigger='h0')
        assert [s['step'] for s in residency_timeline(log.events, 'a')] \
            == ['reject']
        assert [s['step'] for s in residency_timeline(log.events, 'b')] \
            == ['migrate_out', 'migrate_in', 'abort', 'parked', 'unparked']

    def test_format_residency(self):
        steps = residency_timeline(self.crash_story().events, 'srv0')
        assert format_residency(steps) == (
            'place@h0 -> migrate_out@h0 -> rollback@h0 -> orphaned@h0'
            ' -> recovered@h1')
        assert format_residency([]) == '(no events)'

    def test_vm_names_first_seen_order(self):
        log = self.crash_story()
        log.append(7, EVENT_PLACE, vm='aaa', host='h0')
        assert vm_names(log.events) == ['srv0', 'srv1', 'aaa']


class TestExposition:
    def test_scoped_counters_fold_into_labelled_family(self):
        registry = MetricsRegistry()
        registry.scoped('host.h0.', host='h0').counter('placements').inc(3)
        registry.scoped('host.h1.', host='h1').counter('placements').inc(5)
        text = render_exposition(registry)
        assert '# TYPE repro_placements_total counter' in text
        assert 'repro_placements_total{host="h0"} 3' in text
        assert 'repro_placements_total{host="h1"} 5' in text

    def test_gauges_and_histograms(self):
        registry = MetricsRegistry()
        registry.gauge('pressure').set(0.25)
        registry.histogram('lat_ns').record(1000)
        registry.histogram('lat_ns').record(2000)
        text = render_exposition(registry)
        assert '# TYPE repro_pressure gauge' in text
        assert 'repro_pressure 0.25' in text
        assert '# TYPE repro_lat_ns summary' in text
        assert 'repro_lat_ns{quantile="0.5"}' in text
        assert 'repro_lat_ns_count 2' in text

    def test_output_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.scoped('host.b.', host='b').counter('x').inc()
            registry.scoped('host.a.', host='a').counter('x').inc()
            registry.gauge('g').set(1)
            return render_exposition(registry)
        assert build() == build()

    def test_mixed_kind_family_raises(self):
        registry = MetricsRegistry()
        registry.scoped('host.h0.', host='h0').counter('m').inc()
        registry.scoped('host.h1.', host='h1').gauge('m').set(1)
        with pytest.raises(TypeError):
            render_exposition(registry)

    def test_write_exposition_counts_samples(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter('a').inc()
        registry.gauge('b').set(2)
        path = tmp_path / 'metrics.prom'
        assert write_exposition(str(path), registry) == 2
        assert path.read_text().endswith('\n')

    def test_prefix_filter(self):
        registry = MetricsRegistry()
        registry.counter('keep.a').inc()
        registry.counter('drop.b').inc()
        text = render_exposition(registry, prefixes=('keep.',))
        assert 'keep_a' in text
        assert 'drop_b' not in text
