"""Tests for guest CPU hotplug and its interaction with balancing and
the IRS migrator (Algorithm 2 iterates *online* vCPUs)."""

import pytest

from repro.core import install_irs
from repro.simkernel.units import MS, SEC
from repro.workloads import Compute, cpu_hog

from conftest import build_machine, build_vm, single_vm_machine


class TestHotplugBasics:
    def test_offline_evacuates_tasks(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        a = kernel.spawn('a', cpu_hog(10 * MS), gcpu_index=0)
        b = kernel.spawn('b', cpu_hog(10 * MS), gcpu_index=0)
        sim.run_until(20 * MS)
        kernel.offline_gcpu(0)
        sim.run_until(sim.now + 50 * MS)
        for task in (a, b):
            assert task.gcpu is kernel.gcpus[1]
        assert kernel.gcpus[0].current is None
        assert kernel.gcpus[0].rq.nr_ready == 0

    def test_offline_cpu_takes_no_new_work(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        kernel.offline_gcpu(0)
        task = kernel.spawn('t', cpu_hog(10 * MS), gcpu_index=1)
        sim.run_until(200 * MS)
        assert task.gcpu is kernel.gcpus[1]
        # The offline CPU consumed nothing.
        run0 = vm.vcpus[0].snapshot_accounting(sim.now)[0]
        assert run0 < 1 * MS

    def test_cannot_offline_last_cpu(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        kernel.offline_gcpu(0)
        with pytest.raises(RuntimeError):
            kernel.offline_gcpu(1)

    def test_online_again_reused(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        kernel.offline_gcpu(0)
        a = kernel.spawn('a', cpu_hog(5 * MS), gcpu_index=1)
        b = kernel.spawn('b', cpu_hog(5 * MS), gcpu_index=1)
        sim.run_until(50 * MS)
        kernel.online_gcpu(0)
        sim.run_until(sim.now + 300 * MS)
        # NOHZ kicks and pulls repopulate the revived CPU.
        run0 = vm.vcpus[0].snapshot_accounting(sim.now)[0]
        assert run0 > 50 * MS

    def test_offline_idempotent(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        kernel.offline_gcpu(0)
        kernel.offline_gcpu(0)
        kernel.online_gcpu(0)
        kernel.online_gcpu(0)
        assert kernel.gcpus[0].online

    def test_online_gcpus_listing(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=4, n_vcpus=4)
        kernel.offline_gcpu(2)
        online = kernel.online_gcpus()
        assert len(online) == 3
        assert kernel.gcpus[2] not in online


class TestHotplugWithIrs:
    def test_migrator_skips_offline_cpus(self, sim):
        """With the only idle sibling offline, the migrator must not
        place work there."""
        machine = build_machine(sim, 3)
        vm, kernel = build_vm(sim, machine, 'fg', n_vcpus=3,
                              pinning=[0, 1, 2])
        __, hk = build_vm(sim, machine, 'hog', pinning=[0])
        hk.spawn('hog', cpu_hog(10 * MS))
        install_irs(machine, [kernel])
        machine.start()
        kernel.offline_gcpu(2)           # the tempting idle sibling
        worker = kernel.spawn('w', cpu_hog(10 * MS), gcpu_index=0)
        busy = kernel.spawn('busy', cpu_hog(10 * MS), gcpu_index=1)
        sim.run_until(1 * SEC)
        assert worker.migrations > 0
        # All of the worker's CPU time came from online CPUs.
        run_offline = vm.vcpus[2].snapshot_accounting(sim.now)[0]
        assert run_offline < 1 * MS

    def test_workload_survives_offline_during_run(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=4, n_vcpus=4)
        done = []
        for i in range(4):
            kernel.spawn('w%d' % i, iter([Compute(100 * MS)]),
                         gcpu_index=i,
                         on_exit=lambda t, now: done.append(now))
        sim.run_until(30 * MS)
        kernel.offline_gcpu(3)
        sim.run_until(2 * SEC)
        assert len(done) == 4
