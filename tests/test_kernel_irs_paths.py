"""Focused tests for guest-kernel paths exercised by IRS, migration
penalties, and configuration knobs."""

from repro.core import IRSConfig, install_irs
from repro.guestos import CfsConfig, GuestKernel
from repro.guestos.task import TASK_MIGRATING
from repro.hypervisor import CreditConfig, Machine, SCHEDOP_BLOCK, SCHEDOP_YIELD, VM
from repro.simkernel import Simulator
from repro.simkernel.units import MS, SEC, US
from repro.workloads import Compute, cpu_hog

from conftest import build_machine, build_vm


class TestSaContextSwitchAnswers:
    def _irs_pair(self, sim):
        machine = build_machine(sim, 1)
        vm, kernel = build_vm(sim, machine, 'fg', pinning=[0])
        __, hk = build_vm(sim, machine, 'hog', pinning=[0])
        hk.spawn('hog', cpu_hog(10 * MS))
        install_irs(machine, [kernel])
        machine.start()
        return machine, vm, kernel

    def test_empty_runqueue_answers_block(self, sim):
        machine, vm, kernel = self._irs_pair(sim)
        kernel.spawn('solo', cpu_hog(10 * MS))
        # Drive until the first SA completes.
        sim.run_until(200 * MS)
        op, task = None, None
        # Reproduce the decision the context switcher made: single task,
        # so after descheduling it the rq is empty -> SCHEDOP_block.
        gcpu = kernel.gcpus[0]
        kernel.sa_begin(gcpu)
        op, task = kernel.sa_context_switch(gcpu)
        assert op == SCHEDOP_BLOCK
        if task is not None:
            assert task.state == TASK_MIGRATING
            assert task.irs_tag

    def test_nonempty_runqueue_answers_yield(self, sim):
        machine, vm, kernel = self._irs_pair(sim)
        kernel.spawn('a', cpu_hog(10 * MS))
        kernel.spawn('b', cpu_hog(10 * MS))
        sim.run_until(55 * MS)
        gcpu = kernel.gcpus[0]
        if gcpu.current is None:
            sim.run_until(sim.now + 40 * MS)
        assert gcpu.current is not None
        kernel.sa_begin(gcpu)
        op, task = kernel.sa_context_switch(gcpu)
        assert op == SCHEDOP_YIELD
        assert gcpu.rq.nr_ready >= 1

    def test_sa_handler_time_not_charged_to_task(self, sim):
        """Handler time is kernel time: the task is charged exactly its
        compute plus per-migration cache-refill penalties, never the
        20-26 us SA handler windows."""
        machine, vm, kernel = self._irs_pair(sim)
        done = []
        task = kernel.spawn('t', iter([Compute(300 * MS)]),
                            on_exit=lambda t, now: done.append(now))
        sim.run_until(5 * SEC)
        assert done
        penalty = kernel.policy.config.migration_penalty_ns
        assert task.cpu_ns >= 300 * MS
        assert task.cpu_ns <= 300 * MS + task.migrations * penalty


class TestMigrationPenalty:
    def test_cache_footprint_scales_penalty(self, sim):
        """A memory-heavy task pays a proportionally larger compute
        extension when migrated."""
        machine = build_machine(sim, 2)
        vm, kernel = build_vm(sim, machine, n_vcpus=2, pinning=[0, 1])
        machine.start()
        light = kernel.spawn('light', iter([Compute(50 * MS)]),
                             gcpu_index=0, cache_footprint=1.0)
        sim.run_until(1 * MS)
        base_remaining = light.remaining_ns
        kernel.pull_task(light, kernel.gcpus[1]) if light.state == 'ready' \
            else None
        # Direct unit check on the penalty application instead:
        heavy = kernel.spawn('heavy', iter([Compute(50 * MS)]),
                             gcpu_index=0, cache_footprint=4.0)
        sim.run_until(sim.now + 1 * MS)
        for task in (light, heavy):
            if task.remaining_ns > 0:
                before = task.remaining_ns
                kernel._apply_migration_penalty(task)
                penalty = task.remaining_ns - before
                expected = int(kernel.policy.config.migration_penalty_ns *
                               task.cache_footprint)
                assert penalty == expected

    def test_no_penalty_without_inflight_compute(self, sim):
        machine, vm, kernel = (lambda m: (m, *build_vm(sim, m,
                                                       pinning=[0])))(
            build_machine(sim, 1))
        machine.start()
        task = kernel.spawn('t', iter([Compute(1 * MS)]))
        sim.run_until(10 * MS)          # task exited; no compute left
        before = task.remaining_ns
        kernel._apply_migration_penalty(task)
        assert task.remaining_ns == before


class TestConfigKnobs:
    def test_custom_cfs_latency_shrinks_slices(self):
        sim = Simulator(seed=1)
        machine = Machine(sim, 1)
        vm = VM('vm', 1, sim)
        machine.add_vm(vm, pinning=[0])
        config = CfsConfig(sched_latency_ns=2 * MS)
        kernel = GuestKernel(sim, vm, machine, cfs_config=config)
        assert kernel.policy.slice_ns(2) == 1 * MS

    def test_custom_credit_slice_changes_alternation(self):
        """A 10 ms hypervisor slice doubles the context-switch rate of
        two competing vCPUs versus the 30 ms default."""
        def preemptions(tslice_ms):
            sim = Simulator(seed=2)
            config = CreditConfig(tslice_ns=tslice_ms * MS)
            machine = Machine(sim, 1, credit_config=config)
            __, k1 = build_vm(sim, machine, 'a', pinning=[0])
            __, k2 = build_vm(sim, machine, 'b', pinning=[0])
            k1.spawn('h1', cpu_hog(10 * MS))
            k2.spawn('h2', cpu_hog(10 * MS))
            machine.start()
            sim.run_until(1 * SEC)
            return sim.trace.counters['hv.preemptions']
        assert preemptions(10) > preemptions(30) * 2

    def test_boost_can_be_disabled(self):
        from repro.workloads import Sleep
        sim = Simulator(seed=3)
        config = CreditConfig(boost_on_wake=False)
        machine = Machine(sim, 1, credit_config=config)
        __, kh = build_vm(sim, machine, 'hog', pinning=[0])
        __, ks = build_vm(sim, machine, 'sleeper', pinning=[0])
        kh.spawn('h', cpu_hog(10 * MS))

        def napper():
            while True:
                yield Sleep(20 * MS)
                yield Compute(1 * MS)
        ks.spawn('s', napper())
        machine.start()
        sim.run_until(1 * SEC)
        # Without boosting, wakes wait for slice boundaries: heavy
        # steal for the sleeper.
        steal = machine.vms[1].total_runstate(sim.now)[1]
        assert steal > 100 * MS

    def test_irs_config_migrator_kick_delay(self, sim):
        """A larger migrator kick delays migration but not correctness."""
        machine = build_machine(sim, 2)
        vm, kernel = build_vm(sim, machine, 'fg', n_vcpus=2,
                              pinning=[0, 1])
        __, hk = build_vm(sim, machine, 'hog', pinning=[0])
        hk.spawn('hog', cpu_hog(10 * MS))
        install_irs(machine, [kernel],
                    IRSConfig(migrator_kick_ns=500 * US))
        worker = kernel.spawn('w', cpu_hog(10 * MS), gcpu_index=0)
        machine.start()
        sim.run_until(500 * MS)
        assert worker.migrations > 0
