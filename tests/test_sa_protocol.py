"""Tests for the explicit SA protocol state machine
(:mod:`repro.core.protocol`) and its sanitizer invariants.

Three layers of coverage:

* the pure state machine: the legal-transition table is exercised
  exhaustively (every ``(state, edge)`` pair), including the guarantee
  that illegal edges are recorded without corrupting the state;
* live rounds: happy-path IRS runs traverse only normal edges, fault
  campaigns traverse the degraded ones, and CPU hotplug mid-round
  resolves through the early-ack edges — all with the runtime
  sanitizer raising on any inconsistency;
* the sanitizer itself: each of the three new SA invariants is shown
  to fire on a fabricated violation.
"""

from repro.core import IRSConfig, install_irs
from repro.core.protocol import (
    EDGE_ACK,
    EDGE_CANCEL,
    EDGE_DESCHEDULE,
    EDGE_EARLY_ACK,
    EDGE_LATE_ACK,
    EDGE_MIGRATED,
    EDGE_OFFER,
    EDGE_PARKED_HOME,
    EDGE_RETRY,
    EDGE_SPURIOUS_CLOSE,
    EDGE_SPURIOUS_UPCALL,
    EDGE_STALE_TASK,
    EDGE_STRANDED,
    EDGE_TIMEOUT,
    EDGE_UPCALL,
    LEGAL_TRANSITIONS,
    NORMAL_TRANSITIONS,
    SA_ACKED,
    SA_ACTIVE_STATES,
    SA_IDLE,
    SA_LIMBO,
    SA_NOTIFIED,
    SA_QUIESCENT_STATES,
    SA_STATES,
    SA_SWITCHING,
    SaVcpuProtocol,
)
from repro.faults import FaultPlan, FaultSpec
from repro.hypervisor.channels import VIRQ_SA_UPCALL
from repro.obs.phases import PHASE_DESCRIPTIONS, SA_STATE_PHASES
from repro.simkernel import Simulator, install_sanitizer
from repro.simkernel.units import MS, SEC
from repro.workloads import Compute

from conftest import build_machine, build_vm

ALL_EDGES = (EDGE_OFFER, EDGE_RETRY, EDGE_UPCALL, EDGE_SPURIOUS_UPCALL,
             EDGE_DESCHEDULE, EDGE_ACK, EDGE_EARLY_ACK, EDGE_LATE_ACK,
             EDGE_MIGRATED, EDGE_PARKED_HOME, EDGE_STRANDED,
             EDGE_STALE_TASK, EDGE_TIMEOUT, EDGE_CANCEL,
             EDGE_SPURIOUS_CLOSE)


class _FakeSim:
    now = 0


class _FakeVcpu:
    name = 'v-test'
    sim = _FakeSim()


def fresh_protocol(state=SA_IDLE):
    proto = SaVcpuProtocol(_FakeVcpu())
    proto.state = state
    return proto


def hog():
    while True:
        yield Compute(10 * MS)


def irs_scenario(seed=1, config=None, plan=None, sanitize=True):
    """Two-vCPU IRS guest sharing pCPU 0 with a hog VM — the standard
    LHP-provoking topology, with a raise-mode sanitizer watching the
    new SA invariants on every event."""
    sim = Simulator(seed=seed)
    sanitizer = install_sanitizer(sim) if sanitize else None
    machine = build_machine(sim, 2)
    fg_vm, kernel = build_vm(sim, machine, 'fg', n_vcpus=2, pinning=[0, 1])
    __, hk = build_vm(sim, machine, 'hog', pinning=[0])
    sender = install_irs(machine, [kernel],
                         config or IRSConfig(degradation_enabled=True))
    if plan is not None:
        plan.build(sim).attach(machine)
    kernel.spawn('w', hog(), gcpu_index=0)
    hk.spawn('hog', hog())
    machine.start()
    return sim, machine, kernel, sender, sanitizer


def run_until_sa_state(sim, vcpu, state, deadline_ns):
    """Advance the simulation one event at a time until ``vcpu``'s
    protocol sits in ``state`` between events (some windows last only
    a few microseconds). False if the deadline passes."""
    while sim.now < deadline_ns:
        if not sim.step():
            return False
        proto = vcpu.sa_protocol
        if proto is not None and proto.state == state:
            return True
    return False


# =====================================================================
# The pure state machine
# =====================================================================

class TestTransitionTable:
    def test_every_pair_exhaustively(self):
        """Legal pairs move the state exactly as the table says; every
        other pair is recorded as illegal and leaves the state alone."""
        for state in SA_STATES:
            for edge in ALL_EDGES:
                proto = fresh_protocol(state)
                ok = proto._transition(edge)
                expected = LEGAL_TRANSITIONS.get((state, edge))
                if expected is not None:
                    assert ok, (state, edge)
                    assert proto.state == expected, (state, edge)
                    assert not proto.illegal
                    assert proto.edges == {edge: 1}
                else:
                    assert not ok, (state, edge)
                    assert proto.state == state, (state, edge)
                    assert len(proto.illegal) == 1
                    bad = proto.illegal[0]
                    assert (bad.state, bad.edge) == (state, edge)
                    assert proto.edges == {}

    def test_table_is_closed_over_known_names(self):
        for (state, edge), new_state in LEGAL_TRANSITIONS.items():
            assert state in SA_STATES
            assert new_state in SA_STATES
            assert edge in ALL_EDGES

    def test_normal_transitions_are_legal(self):
        assert NORMAL_TRANSITIONS <= set(LEGAL_TRANSITIONS)

    def test_cancel_is_legal_from_everywhere(self):
        """Live-migration teardown must be able to void any round."""
        for state in SA_STATES:
            assert (state, EDGE_CANCEL) in LEGAL_TRANSITIONS

    def test_every_state_reaches_idle(self):
        """No trap states: from anywhere some edge sequence returns to
        a fresh-round IDLE (degradation can always drain)."""
        reachable = {SA_IDLE}
        changed = True
        while changed:
            changed = False
            for (state, edge), new_state in LEGAL_TRANSITIONS.items():
                if new_state in reachable and state not in reachable:
                    reachable.add(state)
                    changed = True
        assert reachable == set(SA_STATES)

    def test_degraded_counting(self):
        proto = fresh_protocol(SA_LIMBO)
        proto._transition(EDGE_UPCALL)        # lost-ack re-entry
        assert proto.degraded == {EDGE_UPCALL: 1}
        proto = fresh_protocol(SA_IDLE)
        proto._transition(EDGE_OFFER)         # happy path
        assert proto.degraded == {}
        assert proto.degraded_total() == 0


class TestIntentResolution:
    def test_offer_starts_a_round(self):
        proto = fresh_protocol()
        assert proto.offer()
        assert proto.state == SA_NOTIFIED
        assert proto.round == 1
        assert not proto.is_quiescent

    def test_upcall_from_quiescent_is_spurious(self):
        for state in SA_QUIESCENT_STATES:
            proto = fresh_protocol(state)
            assert proto.upcall()
            assert proto.state == SA_SWITCHING
            assert proto.degraded == {EDGE_SPURIOUS_UPCALL: 1}

    def test_spurious_round_closes_at_ack_send(self):
        proto = fresh_protocol()
        proto.upcall()
        proto.deschedule(None)
        assert proto.state == SA_LIMBO
        proto.ack_sent()
        assert proto.state == SA_IDLE
        assert proto.degraded.get(EDGE_SPURIOUS_CLOSE) == 1

    def test_real_round_ignores_ack_sent(self):
        proto = fresh_protocol()
        proto.offer()
        proto.upcall()
        proto.deschedule(None)
        proto.ack_sent()                     # sender will handshake
        assert proto.state == SA_LIMBO
        proto.ack()
        assert proto.state == SA_ACKED

    def test_ack_resolves_early_when_not_in_limbo(self):
        proto = fresh_protocol()
        proto.offer()
        assert proto.ack()                   # guest blocked pre-upcall
        assert proto.state == SA_ACKED
        assert proto.degraded == {EDGE_EARLY_ACK: 1}

    def test_ack_resolves_late_after_the_round_closed(self):
        for state in SA_QUIESCENT_STATES:
            proto = fresh_protocol(state)
            assert proto.ack()               # sender's round outlived us
            assert proto.state == state
            assert proto.degraded == {EDGE_LATE_ACK: 1}

    def test_task_disposal_identity(self):
        task_a, task_b = object(), object()
        proto = fresh_protocol()
        proto.offer()
        proto.upcall()
        proto.deschedule(task_a)
        proto.ack()
        # A stale disposal (superseded round's task) does not move us.
        proto.task_disposed(task_b, 'migrated')
        assert proto.state == SA_ACKED
        assert proto.stale_disposals == 1
        # The round's own task does.
        proto.task_disposed(task_a, 'migrated')
        assert proto.state == 'migrated'

    def test_cancel_from_idle_is_a_noop(self):
        proto = fresh_protocol()
        assert proto.cancel()
        assert proto.state == SA_IDLE
        assert not proto.illegal
        assert proto.edges == {}


class TestPhaseMapping:
    def test_obs_mirror_matches_protocol_states(self):
        """obs sits below core, so it mirrors the state names as
        strings; this is the test the mirror comment promises."""
        assert set(SA_STATE_PHASES) == set(SA_STATES) - {SA_IDLE}
        for phase in SA_STATE_PHASES.values():
            assert phase in PHASE_DESCRIPTIONS

    def test_sanitizer_mirror_matches_protocol_states(self):
        from repro.simkernel.sanitizer import _SA_ACTIVE_STATES
        assert tuple(_SA_ACTIVE_STATES) == tuple(SA_ACTIVE_STATES)


# =====================================================================
# Live rounds
# =====================================================================

class TestLiveRounds:
    def test_happy_path_traverses_only_normal_edges(self):
        sim, machine, kernel, sender, sanitizer = irs_scenario(seed=2)
        sim.run_until(2 * SEC)
        proto = machine.vms[0].vcpus[0].sa_protocol
        assert proto is not None
        assert proto.round > 0
        for edge in (EDGE_OFFER, EDGE_UPCALL, EDGE_DESCHEDULE, EDGE_ACK):
            assert proto.edges.get(edge, 0) > 0, edge
        assert not proto.illegal
        assert proto.degraded_total() == 0
        sanitizer.assert_clean()

    def test_lost_acks_traverse_degraded_edges(self):
        plan = FaultPlan('acks', [FaultSpec('sa_ack_timeout', 1.0, vm='fg')])
        sim, machine, kernel, sender, sanitizer = irs_scenario(
            seed=3, plan=plan)
        sim.run_until(2 * SEC)
        proto = machine.vms[0].vcpus[0].sa_protocol
        assert proto is not None
        assert not proto.illegal
        # Every ack is swallowed: rounds linger in LIMBO until a retry
        # re-enters the handler or the grace window expires.
        assert proto.degraded_total() > 0
        assert (proto.degraded.get(EDGE_RETRY, 0) > 0
                or proto.degraded.get(EDGE_TIMEOUT, 0) > 0)
        sanitizer.assert_clean()

    def test_lost_upcalls_time_out(self):
        plan = FaultPlan('drops', [FaultSpec('virq_drop', 1.0,
                                             virq=VIRQ_SA_UPCALL, vm='fg')])
        sim, machine, kernel, sender, sanitizer = irs_scenario(
            seed=4, plan=plan)
        sim.run_until(2 * SEC)
        proto = machine.vms[0].vcpus[0].sa_protocol
        assert proto is not None
        assert not proto.illegal
        assert proto.degraded.get(EDGE_TIMEOUT, 0) > 0
        assert proto.edges.get(EDGE_UPCALL, 0) == 0
        sanitizer.assert_clean()


class TestHotplugRaces:
    def test_offline_while_notified(self):
        """Offlining the gCPU while the upcall is still travelling: the
        parked vCPU answers with a sched_op the sender treats as an
        early ack — never an illegal edge."""
        plan = FaultPlan('drops', [FaultSpec('virq_drop', 1.0,
                                             virq=VIRQ_SA_UPCALL, vm='fg')])
        sim, machine, kernel, sender, sanitizer = irs_scenario(
            seed=5, plan=plan)
        vcpu = machine.vms[0].vcpus[0]
        assert run_until_sa_state(sim, vcpu, SA_NOTIFIED, 2 * SEC)
        kernel.offline_gcpu(0)
        sim.run_until(sim.now + 100 * MS)
        proto = vcpu.sa_protocol
        assert not proto.illegal
        assert proto.state in SA_QUIESCENT_STATES
        sanitizer.assert_clean()

    def test_offline_while_limbo(self):
        """Offlining mid-round with the ack lost: the round must drain
        through retry/timeout without tripping any SA invariant."""
        plan = FaultPlan('acks', [FaultSpec('sa_ack_timeout', 1.0,
                                            vm='fg')])
        sim, machine, kernel, sender, sanitizer = irs_scenario(
            seed=6, plan=plan)
        vcpu = machine.vms[0].vcpus[0]
        assert run_until_sa_state(sim, vcpu, SA_LIMBO, 2 * SEC)
        kernel.offline_gcpu(0)
        sim.run_until(sim.now + 100 * MS)
        proto = vcpu.sa_protocol
        assert not proto.illegal
        assert proto.state in SA_QUIESCENT_STATES
        sanitizer.assert_clean()


# =====================================================================
# The sanitizer invariants themselves
# =====================================================================

class TestSanitizerInvariants:
    def _scenario(self):
        sim, machine, kernel, sender, __ = irs_scenario(seed=7,
                                                        sanitize=False)
        sanitizer = install_sanitizer(sim, mode='collect',
                                      machines=[machine])
        sim.run_until(500 * MS)
        vcpu = machine.vms[0].vcpus[0]
        assert vcpu.sa_protocol is not None
        sanitizer.violations.clear()
        return sim, machine, vcpu, sanitizer

    def _invariants(self, sanitizer):
        sanitizer.check_now()
        return {v.invariant for v in sanitizer.violations}

    def test_clean_run_is_clean(self):
        sim, machine, vcpu, sanitizer = self._scenario()
        assert self._invariants(sanitizer) == set()

    def test_illegal_edge_is_reported_once(self):
        sim, machine, vcpu, sanitizer = self._scenario()
        vcpu.sa_protocol._transition(EDGE_DESCHEDULE)   # illegal: no round
        assert 'sa_legal_transitions' in self._invariants(sanitizer)
        # Attributed to the first check after the edge, not re-reported.
        sanitizer.violations.clear()
        assert 'sa_legal_transitions' not in self._invariants(sanitizer)

    def test_offer_without_pending_flag_is_reported(self):
        sim, machine, vcpu, sanitizer = self._scenario()
        vcpu.sa_protocol.state = SA_NOTIFIED
        vcpu.sa_pending = False
        assert 'sa_flag_consistency' in self._invariants(sanitizer)

    def test_handshake_without_clearing_flag_is_reported(self):
        sim, machine, vcpu, sanitizer = self._scenario()
        vcpu.sa_protocol.state = SA_ACKED
        vcpu.sa_pending = True
        assert 'sa_flag_consistency' in self._invariants(sanitizer)

    def test_handler_flag_outside_switching_is_reported(self):
        sim, machine, vcpu, sanitizer = self._scenario()
        vcpu.sa_protocol.state = SA_IDLE
        vcpu.sa_pending = False
        vcpu.gcpu.in_sa_handler = True
        assert 'sa_flag_consistency' in self._invariants(sanitizer)
        vcpu.gcpu.in_sa_handler = False

    def test_round_on_vanilla_guest_is_reported(self):
        sim, machine, vcpu, sanitizer = self._scenario()
        vcpu.sa_protocol.state = SA_NOTIFIED
        vcpu.sa_pending = True
        vcpu.vm.irs_capable = False
        assert 'sa_capability' in self._invariants(sanitizer)
