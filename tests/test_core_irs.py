"""Tests for the IRS components: sender, receiver, context switcher,
migrator, and the end-to-end scheduler-activation flow."""

import pytest

from repro.core import IRSConfig, install_irs
from repro.guestos.task import TASK_MIGRATING
from repro.simkernel import Simulator
from repro.simkernel.units import MS, SEC, US
from repro.workloads import Acquire, Barrier, BarrierWait, Compute, Mutex, Release

from conftest import build_machine, build_vm


def hog():
    while True:
        yield Compute(10 * MS)


def irs_scenario(sim, n_pcpus=2, fg_vcpus=2, hog_pcpu=0, config=None):
    """fg VM (IRS) with vCPUs pinned 1:1, one hog VM sharing pcpu 0."""
    machine = build_machine(sim, n_pcpus)
    fg_vm, fg_kernel = build_vm(sim, machine, 'fg', n_vcpus=fg_vcpus,
                                pinning=list(range(fg_vcpus)))
    __, hog_kernel = build_vm(sim, machine, 'hog', pinning=[hog_pcpu])
    sender = install_irs(machine, [fg_kernel], config)
    hog_kernel.spawn('hog', hog())
    machine.start()
    return machine, fg_vm, fg_kernel, sender


class TestSaSender:
    def test_sa_sent_on_involuntary_preemption(self, sim):
        machine, vm, kernel, sender = irs_scenario(sim)
        kernel.spawn('w', hog(), gcpu_index=0)
        sim.run_until(500 * MS)
        assert sender.sent > 0
        assert sim.trace.counters['irs.sa_sent'] == sender.sent

    def test_no_sa_for_vanilla_guest(self, sim):
        machine = build_machine(sim, 1)
        __, k1 = build_vm(sim, machine, 'a', pinning=[0])
        __, k2 = build_vm(sim, machine, 'b', pinning=[0])
        sender = install_irs(machine, [k1])      # only VM a is capable
        k1.spawn('w1', hog())
        k2.spawn('w2', hog())
        machine.start()
        sim.run_until(500 * MS)
        # Both VMs are preempted constantly, but only VM a receives SA.
        assert sender.sent > 0
        assert all(v.sa_pending is False for v in machine.vms[1].vcpus)

    def test_no_duplicate_sa_while_pending(self, sim):
        config = IRSConfig(sa_handler_min_ns=20 * US,
                           sa_handler_max_ns=26 * US)
        machine, vm, kernel, sender = irs_scenario(sim, config=config)
        kernel.spawn('w', hog(), gcpu_index=0)
        sim.run_until(500 * MS)
        # Every offer was either acknowledged or timed out; sa_pending
        # never sticks.
        assert not vm.vcpus[0].sa_pending

    def test_delay_samples_within_configured_band(self, sim):
        machine, vm, kernel, sender = irs_scenario(sim)
        kernel.spawn('w', hog(), gcpu_index=0)
        sim.run_until(1 * SEC)
        assert sender.delay_samples_ns
        for sample in sender.delay_samples_ns:
            assert 20 * US <= sample <= 26 * US

    def test_voluntary_block_sends_no_sa(self, sim):
        """A vCPU that blocks on its own (idle) is not activated."""
        machine = build_machine(sim, 1)
        __, kernel = build_vm(sim, machine, 'fg', pinning=[0])
        sender = install_irs(machine, [kernel])

        def napper():
            from repro.workloads import Sleep
            for __ in range(10):
                yield Compute(1 * MS)
                yield Sleep(5 * MS)
        kernel.spawn('n', napper())
        machine.start()
        sim.run_until(500 * MS)
        assert sender.sent == 0


class TestHardLimit:
    def test_rogue_guest_forced_through(self, sim):
        """If the guest never acknowledges, the hypervisor completes the
        preemption at the hard limit (Section 4.1)."""
        machine, vm, kernel, sender = irs_scenario(
            sim, config=IRSConfig(sa_hard_limit_ns=100 * US))
        kernel.spawn('w', hog(), gcpu_index=0)
        # Sabotage the receiver: swallow upcalls without acking.
        kernel.sa_receiver.on_virq = lambda gcpu, virq: None
        sim.run_until(500 * MS)
        assert sender.timed_out > 0
        # The machine keeps functioning: the hog still gets its share.
        hog_run = machine.vms[1].total_runstate(sim.now)[0]
        assert hog_run > 150 * MS


class TestContextSwitchAndMigration:
    def test_descheduled_task_is_tagged_and_migrated(self, sim):
        machine, vm, kernel, sender = irs_scenario(sim)
        worker = kernel.spawn('w', hog(), gcpu_index=0)
        sim.run_until(500 * MS)
        assert worker.irs_tag
        assert worker.migrations > 0

    def test_migrator_prefers_idle_vcpu(self, sim):
        """With an idle sibling, the migrated task lands there (and the
        idle vCPU wake-boosts): Algorithm 2's fast path."""
        machine, vm, kernel, sender = irs_scenario(sim, n_pcpus=2,
                                                   fg_vcpus=2)
        worker = kernel.spawn('w', hog(), gcpu_index=0)
        # gcpu1 idles: nothing spawned there.
        sim.run_until(200 * MS)
        assert worker.gcpu is kernel.gcpus[1]
        assert sim.trace.counters['irs.migrations'] > 0

    def test_migrator_skips_preempted_vcpus(self, sim):
        """With every sibling preempted, the task returns home rather
        than moving to another frozen vCPU."""
        machine = build_machine(sim, 2)
        fg_vm, fg_kernel = build_vm(sim, machine, 'fg', n_vcpus=2,
                                    pinning=[0, 1])
        __, h0 = build_vm(sim, machine, 'h0', pinning=[0])
        __, h1 = build_vm(sim, machine, 'h1', pinning=[1])
        install_irs(machine, [fg_kernel])
        h0.spawn('hog0', hog())
        h1.spawn('hog1', hog())
        w0 = fg_kernel.spawn('w0', hog(), gcpu_index=0)
        w1 = fg_kernel.spawn('w1', hog(), gcpu_index=1)
        machine.start()
        sim.run_until(1 * SEC)
        # Both fg workers keep making progress despite universal
        # interference (roughly the fair share each).
        assert w0.cpu_ns > 300 * MS
        assert w1.cpu_ns > 300 * MS

    def test_sched_op_block_answer_when_runqueue_empties(self, sim):
        """With a single task, the context switcher answers
        SCHEDOP_block: the vCPU parks blocked, eligible for wake
        boosting later."""
        machine, vm, kernel, sender = irs_scenario(sim, n_pcpus=2,
                                                   fg_vcpus=2)
        kernel.spawn('w', hog(), gcpu_index=0)
        sim.run_until(500 * MS)
        receiver = kernel.sa_receiver
        assert receiver.handled > 0
        assert receiver.context_switcher.switches > 0


class TestPingPongRule:
    def _blocking_pair(self, sim, wakeup_preempt):
        config = IRSConfig(wakeup_preempt_tagged=wakeup_preempt)
        machine, vm, kernel, sender = irs_scenario(sim, n_pcpus=2,
                                                   fg_vcpus=2,
                                                   config=config)
        m = Mutex()
        done = []

        def locker(n):
            for __ in range(n):
                yield Compute(2 * MS)
                yield Acquire(m)
                yield Compute(200 * US)
                yield Release(m)
        for i in range(2):
            kernel.spawn('w%d' % i, locker(150), gcpu_index=i,
                         on_exit=lambda t, now: done.append(now))
        sim.run_until(10 * SEC)
        return done, [t for t in kernel.tasks]

    def test_wake_rule_reduces_migrations(self, sim):
        __, tasks_with = self._blocking_pair(sim, wakeup_preempt=True)
        sim2 = Simulator(seed=42)
        __, tasks_without = self._blocking_pair(sim2, wakeup_preempt=False)
        with_migrations = sum(t.migrations for t in tasks_with)
        without_migrations = sum(t.migrations for t in tasks_without)
        assert with_migrations <= without_migrations

    def test_workload_completes_under_both_rules(self, sim):
        done, __ = self._blocking_pair(sim, wakeup_preempt=True)
        assert len(done) == 2


class TestEndToEndBenefit:
    def test_irs_improves_blocking_barrier_workload(self):
        def run(irs):
            sim = Simulator(seed=11)
            machine = build_machine(sim, 4)
            fg_vm, kernel = build_vm(sim, machine, 'fg', n_vcpus=4,
                                     pinning=[0, 1, 2, 3])
            __, hk = build_vm(sim, machine, 'hog', pinning=[0])
            if irs:
                install_irs(machine, [kernel])
            hk.spawn('hog', hog())
            bar = Barrier(4, mode='block')
            done = []

            def worker(n):
                for __ in range(n):
                    yield Compute(30 * MS)
                    yield BarrierWait(bar)
            for i in range(4):
                kernel.spawn('w%d' % i, worker(20), gcpu_index=i,
                             on_exit=lambda t, now: done.append(now))
            machine.start()
            sim.run_until(60 * SEC)
            assert len(done) == 4
            return max(done)
        vanilla = run(irs=False)
        irs = run(irs=True)
        assert irs < vanilla * 0.85   # at least ~18% faster

    def test_irs_improves_spinning_barrier_workload(self):
        def run(irs):
            sim = Simulator(seed=12)
            machine = build_machine(sim, 4)
            fg_vm, kernel = build_vm(sim, machine, 'fg', n_vcpus=4,
                                     pinning=[0, 1, 2, 3])
            __, hk = build_vm(sim, machine, 'hog', pinning=[0])
            if irs:
                install_irs(machine, [kernel])
            hk.spawn('hog', hog())
            bar = Barrier(4, mode='spin')
            region = Barrier(4, mode='block')
            done = []

            def worker(n):
                for i in range(n):
                    yield Compute(30 * MS)
                    yield BarrierWait(region if (i + 1) % 10 == 0 else bar)
            for i in range(4):
                kernel.spawn('w%d' % i, worker(20), gcpu_index=i,
                             on_exit=lambda t, now: done.append(now))
            machine.start()
            sim.run_until(60 * SEC)
            assert len(done) == 4
            return max(done)
        vanilla = run(irs=False)
        irs = run(irs=True)
        assert irs < vanilla * 0.9

    def test_fairness_preserved(self, sim):
        """Section 5.4: IRS never pushes the fg VM past its fair share."""
        machine, vm, kernel, sender = irs_scenario(sim)
        kernel.spawn('w', hog(), gcpu_index=0)
        sim.run_until(2 * SEC)
        fg_run = vm.total_runstate(sim.now)[0]
        share = machine.fair_share_ns(vm, 2 * SEC)
        assert fg_run <= share * 1.05


class TestGracefulDegradation:
    """Sender retry/backoff and the per-VM SA-health watchdog
    (``degradation_enabled=True``), across the four ack outcomes:
    on time, late, never, duplicated."""

    def test_ack_on_time_needs_no_retries(self, sim):
        config = IRSConfig(degradation_enabled=True)
        machine, vm, kernel, sender = irs_scenario(sim, config=config)
        kernel.spawn('w', hog(), gcpu_index=0)
        sim.run_until(500 * MS)
        assert sender.sent > 0
        assert sender.retried == 0
        assert sender.timed_out == 0
        assert sender.health.fallbacks == 0

    def test_ack_late_recovered_by_retry_with_backoff(self, sim):
        # Hard limit below the 20-26 us handler cost: the first grace
        # window always expires mid-handler. The retry extends it and
        # the late ack still lands — no forced preemption.
        config = IRSConfig(degradation_enabled=True,
                           sa_hard_limit_ns=10 * US,
                           sa_retry_backoff_ns=100 * US)
        machine, vm, kernel, sender = irs_scenario(sim, config=config)
        kernel.spawn('w', hog(), gcpu_index=0)
        sim.run_until(500 * MS)
        assert sender.retried > 0
        assert sender.timed_out == 0
        assert sim.trace.counters['irs.sa_retries'] == sender.retried
        # The acks that arrived were genuinely late (past the window).
        assert sender.delay_samples_ns
        assert max(sender.delay_samples_ns) > 10 * US

    def test_ack_late_times_out_without_degradation(self, sim):
        # Same setup, defense off: every offer burns the grace window.
        config = IRSConfig(sa_hard_limit_ns=10 * US)
        machine, vm, kernel, sender = irs_scenario(sim, config=config)
        kernel.spawn('w', hog(), gcpu_index=0)
        sim.run_until(500 * MS)
        assert sender.retried == 0
        assert sender.timed_out > 0

    def test_ack_never_trips_watchdog_to_vanilla_and_rearms(self, sim):
        # Fallback window longer than a 30 ms slice, so offers actually
        # arrive (and are suppressed) while the VM is degraded.
        config = IRSConfig(degradation_enabled=True,
                           sa_hard_limit_ns=100 * US,
                           sa_health_backoff_ns=200 * MS)
        machine, vm, kernel, sender = irs_scenario(sim, config=config)
        kernel.spawn('w', hog(), gcpu_index=0)
        # Sabotage the receiver: upcalls vanish, acks never come.
        kernel.sa_receiver.on_virq = lambda gcpu, virq: None
        sim.run_until(1 * SEC)
        # Retries were attempted, then offers exhausted...
        assert sender.retried > 0
        assert sender.timed_out > 0
        # ...the watchdog fell back to vanilla preemption...
        assert sender.health.fallbacks > 0
        assert sender.suppressed > 0
        # ...and re-armed to probe the channel again.
        assert sender.health.rearms > 0
        # Vanilla fallback keeps the machine fair: the hog still runs.
        hog_run = machine.vms[1].total_runstate(sim.now)[0]
        assert hog_run > 300 * MS

    def test_duplicate_ack_counted_and_ignored(self, sim):
        config = IRSConfig(degradation_enabled=True)
        machine, vm, kernel, sender = irs_scenario(sim, config=config)
        vcpu = vm.vcpus[0]
        sender.acknowledge(vcpu)               # no offer outstanding
        assert sender.duplicate_acks == 1
        assert not vcpu.sa_pending
        assert sim.trace.counters['irs.sa_dup_acks'] == 1
        # The protocol is unharmed: offers and acks flow normally after.
        kernel.spawn('w', hog(), gcpu_index=0)
        sim.run_until(200 * MS)
        assert sender.sent > 0
        assert sender.delay_samples_ns


class TestConfigValidation:
    def test_bad_handler_band_rejected(self):
        with pytest.raises(ValueError):
            IRSConfig(sa_handler_min_ns=30 * US, sa_handler_max_ns=20 * US)

    def test_install_requires_kernels(self, sim):
        from repro.experiments.strategies import apply_strategy
        machine = build_machine(sim, 1)
        with pytest.raises(ValueError):
            apply_strategy(machine, 'irs', irs_kernels=())
