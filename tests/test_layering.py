"""Tests for the layering lint (``tools/check_layering.py``)."""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    'check_layering', REPO_ROOT / 'tools' / 'check_layering.py')
check_layering = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_layering)


class TestRepoIsLayered:
    def test_no_upward_imports(self):
        violations = check_layering.run(REPO_ROOT / 'src')
        assert violations == []

    def test_every_package_is_ranked(self):
        packages = {p.name for p in (REPO_ROOT / 'src' / 'repro').iterdir()
                    if p.is_dir() and (p / '__init__.py').exists()}
        assert packages == set(check_layering.RANKS)


class TestDetection:
    def _lint(self, tmp_path, source, package='simkernel', name='mod.py'):
        pkg = tmp_path / 'repro' / package
        pkg.mkdir(parents=True)
        (pkg / name).write_text(source)
        return check_layering.run(tmp_path)

    def test_upward_absolute_import_flagged(self, tmp_path):
        violations = self._lint(tmp_path, 'from repro.core import x\n')
        assert len(violations) == 1
        assert 'upward import' in violations[0]

    def test_upward_relative_import_flagged(self, tmp_path):
        violations = self._lint(tmp_path, 'from ..cluster import host\n')
        assert len(violations) == 1
        assert 'upward import' in violations[0]

    def test_upward_plain_import_flagged(self, tmp_path):
        violations = self._lint(tmp_path, 'import repro.experiments.cli\n')
        assert len(violations) == 1

    def test_lazy_import_exempt(self, tmp_path):
        violations = self._lint(tmp_path, (
            'def build():\n'
            '    from repro.cluster import Cluster\n'
            '    return Cluster\n'))
        assert violations == []

    def test_downward_and_sibling_imports_clean(self, tmp_path):
        violations = self._lint(tmp_path, (
            'from repro.obs.phases import PHASE_VIRQ\n'
            'from .units import MS\n'), package='simkernel')
        assert violations == []

    def test_equal_rank_pair_allowed_both_ways(self, tmp_path):
        assert self._lint(tmp_path, 'from ..guestos import GuestKernel\n',
                          package='hypervisor') == []
        assert self._lint(tmp_path, 'from ..hypervisor import Machine\n',
                          package='guestos') == []

    def test_class_body_import_counts_as_module_level(self, tmp_path):
        violations = self._lint(tmp_path, (
            'class C:\n'
            '    from repro.core import install_irs\n'))
        assert len(violations) == 1

    def test_unranked_package_flagged(self, tmp_path):
        violations = self._lint(tmp_path, 'x = 1\n', package='newpkg')
        assert len(violations) == 1
        assert 'no layering rank' in violations[0]
