"""The perf-regression gate: tolerance math, noise floor, CLI exit
codes."""

import json
import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), '..'))
SCRIPT = os.path.join(REPO_ROOT, 'benchmarks', 'check_regression.py')

sys.path.insert(0, os.path.join(REPO_ROOT, 'benchmarks'))

from check_regression import compare  # noqa: E402


BASELINE = {
    'fig1a': {'serial_s': 1.0, 'cache_warm_s': 0.001},
    'fig10': {'serial_s': 4.0},
}


class TestCompare:
    def test_no_regression_within_tolerance(self):
        fresh = {'fig1a': {'serial_s': 1.4}, 'fig10': {'serial_s': 4.1}}
        assert compare(BASELINE, fresh, tolerance=0.5) == []

    def test_flags_past_tolerance(self):
        fresh = {'fig1a': {'serial_s': 1.6}, 'fig10': {'serial_s': 4.1}}
        regressions = compare(BASELINE, fresh, tolerance=0.5)
        assert len(regressions) == 1
        figure, key, base, new, ratio = regressions[0]
        assert (figure, key) == ('fig1a', 'serial_s')
        assert base == 1.0 and new == 1.6
        assert abs(ratio - 1.6) < 1e-9

    def test_noise_floor_skips_tiny_timings(self):
        # cache_warm_s regressed 100x but sits below the floor.
        fresh = {'fig1a': {'serial_s': 1.0, 'cache_warm_s': 0.1}}
        assert compare(BASELINE, fresh, tolerance=0.5,
                       min_seconds=0.05) == []
        # Lowering the floor exposes it.
        assert compare(BASELINE, fresh, tolerance=0.5,
                       min_seconds=0.0005) != []

    def test_one_sided_figures_and_keys_ignored(self):
        fresh = {'fig1a': {'serial_s': 1.0, 'jobs2_s': 99.0},
                 'brand_new': {'serial_s': 99.0}}
        assert compare(BASELINE, fresh, tolerance=0.5) == []

    def test_faster_is_never_a_regression(self):
        fresh = {'fig1a': {'serial_s': 0.1}, 'fig10': {'serial_s': 0.1}}
        assert compare(BASELINE, fresh, tolerance=0.0) == []


class TestCli:
    def _write(self, tmp_path, name, figures):
        path = tmp_path / name
        path.write_text(json.dumps({'figures': figures}))
        return str(path)

    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, SCRIPT, *argv],
            capture_output=True, text=True,
            env=dict(os.environ,
                     PYTHONPATH=os.path.join(REPO_ROOT, 'src')))

    def test_exit_zero_when_clean(self, tmp_path):
        baseline = self._write(tmp_path, 'base.json', BASELINE)
        fresh = self._write(tmp_path, 'fresh.json',
                            {'fig1a': {'serial_s': 1.0}})
        proc = self._run('--baseline', baseline, '--fresh', fresh)
        assert proc.returncode == 0, proc.stderr
        assert 'OK' in proc.stdout

    def test_exit_nonzero_on_regression(self, tmp_path):
        baseline = self._write(tmp_path, 'base.json', BASELINE)
        fresh = self._write(tmp_path, 'fresh.json',
                            {'fig1a': {'serial_s': 9.0}})
        proc = self._run('--baseline', baseline, '--fresh', fresh)
        assert proc.returncode == 1
        assert 'regressed' in proc.stdout

    def test_warn_only_exits_zero(self, tmp_path):
        baseline = self._write(tmp_path, 'base.json', BASELINE)
        fresh = self._write(tmp_path, 'fresh.json',
                            {'fig1a': {'serial_s': 9.0}})
        proc = self._run('--baseline', baseline, '--fresh', fresh,
                         '--warn-only')
        assert proc.returncode == 0
        assert 'regressed' in proc.stdout

    def test_rejects_shapeless_input(self, tmp_path):
        bogus = tmp_path / 'bogus.json'
        bogus.write_text('{"not_figures": {}}')
        proc = self._run('--baseline', str(bogus), '--fresh', str(bogus))
        assert proc.returncode != 0
