"""Unit tests for synchronization primitive state machines (no sim)."""

import pytest
from hypothesis import given, strategies as st

from repro.guestos.task import Task
from repro.workloads.sync import (
    ACQUIRED,
    Barrier,
    BoundedQueue,
    Mutex,
    PASS,
    SPIN,
    SpinLock,
    WAIT,
)


def task(name='t'):
    return Task(name, iter(()))


class TestMutex:
    def test_uncontended_acquire(self):
        m = Mutex()
        a = task('a')
        assert m.acquire(a) == ACQUIRED
        assert m.owner is a

    def test_contended_acquire_waits(self):
        m = Mutex()
        a, b = task('a'), task('b')
        m.acquire(a)
        assert m.acquire(b) == WAIT
        assert b in m.waiters

    def test_release_hands_off_fifo(self):
        m = Mutex()
        a, b, c = task('a'), task('b'), task('c')
        m.acquire(a)
        m.acquire(b)
        m.acquire(c)
        assert m.release(a) is b
        assert m.owner is b
        assert m.release(b) is c

    def test_release_without_waiters_frees(self):
        m = Mutex()
        a = task('a')
        m.acquire(a)
        assert m.release(a) is None
        assert m.owner is None

    def test_release_by_non_owner_raises(self):
        m = Mutex()
        a, b = task('a'), task('b')
        m.acquire(a)
        with pytest.raises(RuntimeError):
            m.release(b)

    def test_contention_stats(self):
        m = Mutex()
        a, b = task('a'), task('b')
        m.acquire(a)
        m.acquire(b)
        assert m.total_acquires == 2
        assert m.contended_acquires == 1

    def test_abandon_wait(self):
        m = Mutex()
        a, b = task('a'), task('b')
        m.acquire(a)
        m.acquire(b)
        m.abandon_wait(b)
        assert m.release(a) is None


class TestSpinLock:
    def test_uncontended(self):
        lock = SpinLock()
        a = task('a')
        assert lock.acquire(a) == ACQUIRED

    def test_contended_spins(self):
        lock = SpinLock()
        a, b = task('a'), task('b')
        lock.acquire(a)
        assert lock.acquire(b) == SPIN
        assert b in lock.spinners

    def test_fair_lock_grants_fifo_even_to_preempted(self):
        """Ticket-lock semantics: the next ticket holder gets the lock
        even if it cannot run — the LWP amplifier."""
        lock = SpinLock(fair=True)
        a, b, c = task('a'), task('b'), task('c')
        lock.acquire(a)
        lock.acquire(b)
        lock.acquire(c)
        grantee = lock.release(a, running_predicate=lambda t: t is c)
        assert grantee is b

    def test_unfair_lock_prefers_running_spinner(self):
        lock = SpinLock(fair=False)
        a, b, c = task('a'), task('b'), task('c')
        lock.acquire(a)
        lock.acquire(b)
        lock.acquire(c)
        grantee = lock.release(a, running_predicate=lambda t: t is c)
        assert grantee is c

    def test_unfair_lock_falls_back_to_head(self):
        lock = SpinLock(fair=False)
        a, b = task('a'), task('b')
        lock.acquire(a)
        lock.acquire(b)
        grantee = lock.release(a, running_predicate=lambda t: False)
        assert grantee is b

    def test_release_empty_frees(self):
        lock = SpinLock()
        a = task('a')
        lock.acquire(a)
        assert lock.release(a) is None
        assert lock.owner is None

    def test_non_owner_release_raises(self):
        lock = SpinLock()
        a, b = task('a'), task('b')
        lock.acquire(a)
        with pytest.raises(RuntimeError):
            lock.release(b)


class TestBarrier:
    def test_last_arrival_passes_and_releases(self):
        bar = Barrier(3, mode='block')
        a, b, c = task('a'), task('b'), task('c')
        assert bar.wait(a) == (WAIT, None)
        assert bar.wait(b) == (WAIT, None)
        status, released = bar.wait(c)
        assert status == PASS
        assert set(released) == {a, b}
        assert bar.generation == 1

    def test_spin_mode_early_arrivals_spin(self):
        bar = Barrier(2, mode='spin')
        a = task('a')
        assert bar.wait(a) == (SPIN, None)

    def test_barrier_reusable_across_generations(self):
        bar = Barrier(2)
        a, b = task('a'), task('b')
        bar.wait(a)
        bar.wait(b)
        assert bar.wait(a) == (WAIT, None)
        status, released = bar.wait(b)
        assert status == PASS
        assert released == [a]
        assert bar.generation == 2

    def test_single_party_always_passes(self):
        bar = Barrier(1)
        status, released = bar.wait(task('a'))
        assert status == PASS
        assert released == []

    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            Barrier(0)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            Barrier(2, mode='busy')

    @given(st.integers(min_value=2, max_value=16),
           st.integers(min_value=1, max_value=5))
    def test_generations_count_property(self, parties, rounds):
        bar = Barrier(parties)
        tasks = [task('t%d' % i) for i in range(parties)]
        for __ in range(rounds):
            for i, t in enumerate(tasks):
                status, __released = bar.wait(t)
                if i < parties - 1:
                    assert status == WAIT
                else:
                    assert status == PASS
        assert bar.generation == rounds


class TestBoundedQueue:
    def test_put_get_roundtrip(self):
        q = BoundedQueue(2)
        p, c = task('p'), task('c')
        assert q.put(p, 'x') == (PASS, None)
        status, item, producer = q.get(c)
        assert (status, item, producer) == (PASS, 'x', None)

    def test_get_empty_waits(self):
        q = BoundedQueue(1)
        c = task('c')
        assert q.get(c) == (WAIT, None, None)
        assert c in q.get_waiters

    def test_put_full_waits(self):
        q = BoundedQueue(1)
        p1, p2 = task('p1'), task('p2')
        q.put(p1, 'a')
        assert q.put(p2, 'b') == (WAIT, None)
        assert (p2, 'b') in q.put_waiters

    def test_put_hands_directly_to_blocked_consumer(self):
        q = BoundedQueue(1)
        p, c = task('p'), task('c')
        q.get(c)
        status, consumer = q.put(p, 'x')
        assert status == PASS
        assert consumer is c
        assert c.mailbox == 'x'

    def test_get_unblocks_waiting_producer(self):
        q = BoundedQueue(1)
        p1, p2, c = task('p1'), task('p2'), task('c')
        q.put(p1, 'a')
        q.put(p2, 'b')          # p2 waits
        status, item, producer = q.get(c)
        assert (status, item) == (PASS, 'a')
        assert producer is p2
        assert q.items == ['b']  # p2's deferred item appended

    def test_fifo_order(self):
        q = BoundedQueue(4)
        p, c = task('p'), task('c')
        for x in ('1', '2', '3'):
            q.put(p, x)
        got = [q.get(c)[1] for __ in range(3)]
        assert got == ['1', '2', '3']

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)

    @given(st.integers(min_value=1, max_value=8),
           st.lists(st.sampled_from(['put', 'get']), max_size=60))
    def test_invariants_property(self, capacity, operations):
        """Items never exceed capacity; waiters only exist at the
        empty/full extremes."""
        q = BoundedQueue(capacity)
        p, c = task('p'), task('c')
        counter = [0]
        for op in operations:
            if op == 'put':
                counter[0] += 1
                q.put(p, counter[0])
            else:
                q.get(c)
            assert len(q.items) <= capacity
            if q.put_waiters:
                assert len(q.items) == capacity
            if q.get_waiters:
                assert not q.items
