"""Tests for declarative experiment specs."""

import json

import pytest

from repro.experiments import SpecError, parse_spec, run_spec, run_spec_file


BASE = {
    'app': 'streamcluster',
    'strategy': 'irs',
    'seed': 1,
    'machine': {'n_pcpus': 4, 'fg_vcpus': 4, 'pinned': True},
    'interference': {'kind': 'hogs', 'width': 1},
    'workload': {'scale': 0.15},
}


class TestParsing:
    def test_minimal_spec(self):
        app, kwargs = parse_spec({'app': 'UA'})
        assert app == 'UA'
        assert kwargs['strategy'] == 'vanilla'
        assert kwargs['n_pcpus'] == 4
        assert kwargs['interference'].width == 0

    def test_full_spec(self):
        app, kwargs = parse_spec(BASE)
        assert app == 'streamcluster'
        assert kwargs['strategy'] == 'irs'
        assert kwargs['interference'].kind == 'hogs'
        assert kwargs['scale'] == 0.15

    def test_timeout_conversion(self):
        __, kwargs = parse_spec({'app': 'UA',
                                 'workload': {'timeout_s': 2.5}})
        assert kwargs['timeout_ns'] == 2_500_000_000

    def test_missing_app_rejected(self):
        with pytest.raises(SpecError):
            parse_spec({'strategy': 'irs'})

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SpecError):
            parse_spec({'app': 'UA', 'strategy': 'quantum'})

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError):
            parse_spec({'app': 'UA', 'frobnicate': 1})
        with pytest.raises(SpecError):
            parse_spec({'app': 'UA', 'machine': {'gpus': 2}})

    def test_non_dict_rejected(self):
        with pytest.raises(SpecError):
            parse_spec(['app'])


class TestExecution:
    def test_run_spec(self):
        result = run_spec(dict(BASE))
        assert result.completed
        assert result.strategy == 'irs'

    def test_run_spec_file_single(self, tmp_path):
        path = tmp_path / 'spec.json'
        path.write_text(json.dumps(dict(BASE)))
        results = run_spec_file(str(path))
        assert len(results) == 1
        assert results[0][1].completed

    def test_run_spec_file_list(self, tmp_path):
        spec_a = dict(BASE)
        spec_b = dict(BASE, strategy='vanilla')
        path = tmp_path / 'specs.json'
        path.write_text(json.dumps([spec_a, spec_b]))
        results = run_spec_file(str(path))
        assert len(results) == 2
        # The deterministic pair reproduces the IRS gain.
        irs = results[0][1].makespan_ns
        vanilla = results[1][1].makespan_ns
        assert irs < vanilla
