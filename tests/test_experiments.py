"""Tests for the experiment harness: topology, strategies, runners,
reporting."""

import pytest

from repro.experiments import (
    InterferenceSpec,
    NO_INTERFERENCE,
    apply_strategy,
    build_scenario,
    format_table,
    run_parallel,
    run_server,
)
from repro.experiments.reporting import FigureResult, format_percent
from repro.simkernel.units import MS, SEC


class TestInterferenceSpec:
    def test_defaults(self):
        spec = InterferenceSpec()
        assert spec.kind == 'hogs'
        assert spec.width == 1
        assert spec.n_vms == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            InterferenceSpec(width=-1)
        with pytest.raises(ValueError):
            InterferenceSpec(n_vms=0)


class TestBuildScenario:
    def test_no_interference_shape(self):
        scenario = build_scenario()
        assert scenario.fg_vm.n_vcpus == 4
        assert len(scenario.machine.pcpus) == 4
        assert scenario.bg_kernels == []

    def test_pinning_one_to_one(self):
        scenario = build_scenario()
        for i, vcpu in enumerate(scenario.fg_vm.vcpus):
            assert vcpu.pinned_pcpu is scenario.machine.pcpus[i]

    def test_hog_interference_width(self):
        scenario = build_scenario(
            interference=InterferenceSpec('hogs', width=2))
        assert len(scenario.bg_kernels) == 1
        bg_vm = scenario.bg_kernels[0].vm
        assert bg_vm.n_vcpus == 2
        assert bg_vm.vcpus[0].pinned_pcpu is scenario.machine.pcpus[0]

    def test_stacked_interfering_vms(self):
        scenario = build_scenario(
            interference=InterferenceSpec('hogs', width=1, n_vms=3))
        assert len(scenario.bg_kernels) == 3

    def test_app_interference_installs_workload(self):
        scenario = build_scenario(
            interference=InterferenceSpec('streamcluster', width=2))
        workload = scenario.bg_workloads[0]
        assert workload.repeat
        assert len(workload.tasks) == 2

    def test_unpinned_enables_balancer(self):
        scenario = build_scenario(pinned=False)
        assert scenario.machine.hv_balancer is not None
        assert scenario.fg_vm.vcpus[0].pinned_pcpu is None


class TestApplyStrategy:
    def test_vanilla_is_noop(self):
        scenario = build_scenario()
        apply_strategy(scenario.machine, 'vanilla')
        machine = scenario.machine
        assert machine.ple is None
        assert machine.relaxed_co is None
        assert machine.sa_sender is None

    def test_each_strategy_attaches_component(self):
        for strategy, attr in (('ple', 'ple'),
                               ('relaxed_co', 'relaxed_co')):
            scenario = build_scenario()
            apply_strategy(scenario.machine, strategy)
            assert getattr(scenario.machine, attr) is not None

    def test_irs_marks_guests_capable(self):
        scenario = build_scenario()
        apply_strategy(scenario.machine, 'irs',
                       irs_kernels=[scenario.fg_kernel])
        assert scenario.fg_vm.irs_capable
        assert scenario.fg_kernel.sa_receiver is not None
        assert scenario.fg_kernel.balancer.irs_wake_rule

    def test_unknown_strategy_raises(self):
        scenario = build_scenario()
        with pytest.raises(ValueError):
            apply_strategy(scenario.machine, 'quantum')


class TestRunners:
    def test_run_parallel_completes(self):
        result = run_parallel('streamcluster', 'vanilla', NO_INTERFERENCE,
                              scale=0.05)
        assert result.completed
        assert result.makespan_ns > 0
        assert result.utilization > 0

    def test_run_parallel_interference_slows(self):
        alone = run_parallel('streamcluster', 'vanilla', NO_INTERFERENCE,
                             scale=0.1)
        contended = run_parallel('streamcluster', 'vanilla',
                                 InterferenceSpec('hogs', 1), scale=0.1)
        assert contended.makespan_ns > alone.makespan_ns * 1.3

    def test_run_parallel_reports_bg_rates(self):
        result = run_parallel('blackscholes', 'vanilla',
                              InterferenceSpec('streamcluster', 2),
                              scale=0.1)
        assert len(result.bg_rates) == 1
        assert result.bg_rates[0] > 0

    def test_run_server_specjbb(self):
        result = run_server('specjbb', 'vanilla', n_hogs=1,
                            measure_ns=500 * MS)
        assert result.throughput > 50
        assert result.latency_summary['p99'] > 0

    def test_run_server_unknown_kind(self):
        with pytest.raises(ValueError):
            run_server('memcached')

    def test_deterministic_same_seed(self):
        a = run_parallel('x264', 'irs', InterferenceSpec('hogs', 1),
                         seed=7, scale=0.05)
        b = run_parallel('x264', 'irs', InterferenceSpec('hogs', 1),
                         seed=7, scale=0.05)
        assert a.makespan_ns == b.makespan_ns

    def test_different_seeds_differ(self):
        a = run_parallel('x264', 'vanilla', InterferenceSpec('hogs', 1),
                         seed=1, scale=0.05)
        b = run_parallel('x264', 'vanilla', InterferenceSpec('hogs', 1),
                         seed=2, scale=0.05)
        assert a.makespan_ns != b.makespan_ns


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(['name', 'value'],
                             [['a', 1.5], ['longer', 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_table_title(self):
        table = format_table(['h'], [['x']], title='My Figure')
        assert table.startswith('My Figure\n=========')

    def test_format_percent(self):
        assert format_percent(None) == '--'
        assert format_percent(12.34) == '+12.3%'
        assert format_percent(-5.0) == '-5.0%'

    def test_figure_result_table(self):
        result = FigureResult('Fig X', ['a'], [['1']], notes={'k': 1})
        assert 'Fig X' in result.table()
        assert result.notes['k'] == 1
