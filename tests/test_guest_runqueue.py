"""Unit tests for the CFS runqueue and task primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.guestos.runqueue import RunQueue
from repro.guestos.task import (
    NICE_0_WEIGHT,
    TASK_READY,
    TASK_SLEEPING,
    Task,
)
from repro.workloads import Compute


def make_task(name='t', vruntime=0):
    task = Task(name, iter(()))
    task.vruntime = vruntime
    task.state = TASK_READY
    return task


def make_rq():
    return RunQueue(gcpu=None)


class TestOrdering:
    def test_pop_min_returns_smallest_vruntime(self):
        rq = make_rq()
        a = make_task('a', 300)
        b = make_task('b', 100)
        c = make_task('c', 200)
        for t in (a, b, c):
            rq.enqueue(t)
        assert rq.pop_min() is b
        assert rq.pop_min() is c
        assert rq.pop_min() is a
        assert rq.pop_min() is None

    def test_equal_vruntime_ordered_by_tid(self):
        rq = make_rq()
        a = make_task('a', 50)
        b = make_task('b', 50)
        rq.enqueue(b)
        rq.enqueue(a)
        assert rq.pop_min() is a  # lower tid wins

    def test_peek_does_not_remove(self):
        rq = make_rq()
        a = make_task('a', 10)
        rq.enqueue(a)
        assert rq.peek_min() is a
        assert len(rq) == 1

    def test_enqueue_requires_ready_state(self):
        rq = make_rq()
        task = make_task('t')
        task.state = TASK_SLEEPING
        with pytest.raises(RuntimeError):
            rq.enqueue(task)

    def test_dequeue_specific(self):
        rq = make_rq()
        a, b = make_task('a', 1), make_task('b', 2)
        rq.enqueue(a)
        rq.enqueue(b)
        rq.dequeue(a)
        assert rq.tasks() == [b]

    def test_dequeue_missing_raises(self):
        rq = RunQueue(gcpu=type('G', (), {'name': 'g'})())
        with pytest.raises(RuntimeError):
            rq.dequeue(make_task('ghost'))

    @given(st.lists(st.integers(min_value=0, max_value=10**9),
                    min_size=1, max_size=50))
    def test_pop_order_sorted_property(self, vruntimes):
        rq = make_rq()
        for i, v in enumerate(vruntimes):
            rq.enqueue(make_task('t%d' % i, v))
        popped = []
        while True:
            task = rq.pop_min()
            if task is None:
                break
            popped.append(task.vruntime)
        assert popped == sorted(vruntimes)


class TestMinVruntime:
    def test_monotonic(self):
        rq = make_rq()
        a = make_task('a', 100)
        rq.enqueue(a)
        rq.update_min_vruntime(None)
        assert rq.min_vruntime == 100
        rq.dequeue(a)
        b = make_task('b', 50)
        rq.enqueue(b)
        rq.update_min_vruntime(None)
        assert rq.min_vruntime == 100  # never decreases

    def test_considers_current(self):
        rq = make_rq()
        current = make_task('cur', 80)
        rq.enqueue(make_task('q', 120))
        rq.update_min_vruntime(current)
        assert rq.min_vruntime == 80

    def test_min_ready_vruntime(self):
        rq = make_rq()
        assert rq.min_ready_vruntime() is None
        rq.enqueue(make_task('a', 7))
        assert rq.min_ready_vruntime() == 7


class TestTask:
    def test_charge_advances_vruntime(self):
        task = make_task('t')
        task.charge(1000)
        assert task.cpu_ns == 1000
        assert task.vruntime == 1000  # weight 1024 == NICE_0

    def test_heavier_task_gains_vruntime_slower(self):
        heavy = Task('h', iter(()), weight=2 * NICE_0_WEIGHT)
        heavy.charge(1000)
        assert heavy.vruntime == 500

    def test_next_action_list_program(self):
        task = Task('t', iter([Compute(5), Compute(6)]))
        assert task.next_action().duration_ns == 5
        assert task.next_action().duration_ns == 6
        assert task.next_action() is None

    def test_next_action_generator_send(self):
        received = []

        def gen():
            value = yield Compute(1)
            received.append(value)
            yield Compute(2)
        task = Task('t', gen())
        task.next_action()
        task.next_action('mailbox-item')
        assert received == ['mailbox-item']

    def test_tids_unique(self):
        a, b = Task('a', iter(())), Task('b', iter(()))
        assert a.tid != b.tid

    def test_runnable_like(self):
        task = make_task('t')
        assert task.runnable_like
        task.state = TASK_SLEEPING
        assert not task.runnable_like
