"""Unit tests for event channels, hypercalls, and the VM container."""

import pytest

from repro.hypervisor import (
    Machine,
    SCHEDOP_BLOCK,
    SCHEDOP_YIELD,
    VIRQ_SA_UPCALL,
    VM,
)
from repro.simkernel import Simulator
from repro.simkernel.units import MS, SEC
from repro.workloads import Compute

from conftest import build_vm


class RecordingGuest:
    """Minimal guest stub implementing the duck-typed interface."""

    def __init__(self):
        self.virqs = []

    def vcpu_started_running(self, vcpu):
        pass

    def vcpu_stopped_running(self, vcpu):
        pass

    def deliver_virq(self, vcpu, virq):
        self.virqs.append((vcpu.name, virq))


class TestEventChannels:
    def test_virq_to_running_vcpu_delivers_now(self):
        sim = Simulator()
        machine = Machine(sim, n_pcpus=1)
        vm = VM('vm', 1, sim)
        machine.add_vm(vm, pinning=[0])
        guest = RecordingGuest()
        vm.attach_guest(guest)
        vcpu = vm.vcpus[0]
        machine.scheduler.wake(vcpu)
        assert vcpu.is_running
        machine.channels.send_virq(vcpu, VIRQ_SA_UPCALL)
        assert guest.virqs == [('vm.v0', VIRQ_SA_UPCALL)]

    def test_virq_to_descheduled_vcpu_pends(self):
        sim = Simulator()
        machine = Machine(sim, n_pcpus=1)
        vm = VM('vm', 1, sim)
        machine.add_vm(vm, pinning=[0])
        guest = RecordingGuest()
        vm.attach_guest(guest)
        vcpu = vm.vcpus[0]
        machine.channels.send_virq(vcpu, 'VIRQ_X')
        assert guest.virqs == []
        assert vcpu.pending_virqs == ['VIRQ_X']

    def test_pended_virq_delivered_on_dispatch(self):
        sim = Simulator()
        machine = Machine(sim, n_pcpus=1)
        vm = VM('vm', 1, sim)
        machine.add_vm(vm, pinning=[0])
        guest = RecordingGuest()
        vm.attach_guest(guest)
        vcpu = vm.vcpus[0]
        machine.channels.send_virq(vcpu, 'VIRQ_X')
        machine.scheduler.wake(vcpu)
        assert guest.virqs == [('vm.v0', 'VIRQ_X')]
        assert vcpu.pending_virqs == []

    def test_duplicate_pended_virq_collapses(self):
        sim = Simulator()
        machine = Machine(sim, n_pcpus=1)
        vm = VM('vm', 1, sim)
        machine.add_vm(vm, pinning=[0])
        vm.attach_guest(RecordingGuest())
        vcpu = vm.vcpus[0]
        machine.channels.send_virq(vcpu, 'VIRQ_X')
        machine.channels.send_virq(vcpu, 'VIRQ_X')
        assert vcpu.pending_virqs == ['VIRQ_X']

    def test_virq_without_guest_dropped(self):
        sim = Simulator()
        machine = Machine(sim, n_pcpus=1)
        vm = VM('vm', 1, sim)
        machine.add_vm(vm, pinning=[0])
        machine.channels.send_virq(vm.vcpus[0], 'VIRQ_X')
        assert sim.trace.counters['virq.dropped'] == 1


class TestHypercalls:
    def _machine_with_hog(self):
        sim = Simulator(seed=1)
        machine = Machine(sim, n_pcpus=1)
        vm, kernel = build_vm(sim, machine, pinning=[0])

        def hog():
            while True:
                yield Compute(10 * MS)
        kernel.spawn('h', hog())
        machine.start()
        return sim, machine, vm

    def test_runstate_probe(self):
        sim, machine, vm = self._machine_with_hog()
        sim.run_until(5 * MS)
        assert machine.hypercalls.vcpu_op_get_runstate(
            vm.vcpus[0]) == 'running'
        assert machine.hypercalls.vcpu_is_running(vm.vcpus[0])
        assert not machine.hypercalls.vcpu_is_preempted(vm.vcpus[0])

    def test_sched_op_yield_keeps_vcpu_runnable(self):
        sim, machine, vm = self._machine_with_hog()
        sim.run_until(5 * MS)
        machine.hypercalls.sched_op(vm.vcpus[0], SCHEDOP_YIELD)
        # Sole vCPU on the pCPU: it is redispatched at once.
        assert vm.vcpus[0].is_running

    def test_unknown_sched_op_raises(self):
        sim, machine, vm = self._machine_with_hog()
        with pytest.raises(ValueError):
            machine.hypercalls.sched_op(vm.vcpus[0], 'SCHEDOP_bogus')

    def test_steal_time_visible(self):
        sim = Simulator(seed=2)
        machine = Machine(sim, n_pcpus=1)
        __, k1 = build_vm(sim, machine, 'a', pinning=[0])
        __, k2 = build_vm(sim, machine, 'b', pinning=[0])

        def hog():
            while True:
                yield Compute(10 * MS)
        k1.spawn('h1', hog())
        k2.spawn('h2', hog())
        machine.start()
        sim.run_until(1 * SEC)
        steal = machine.hypercalls.steal_time(machine.vms[0].vcpus[0])
        assert steal > 300 * MS


class TestVm:
    def test_siblings(self):
        sim = Simulator()
        vm = VM('vm', 3, sim)
        sibs = vm.siblings_of(vm.vcpus[1])
        assert vm.vcpus[1] not in sibs
        assert len(sibs) == 2

    def test_zero_vcpus_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            VM('bad', 0, sim)

    def test_fair_share_two_equal_vms(self):
        sim = Simulator()
        machine = Machine(sim, n_pcpus=4)
        a = VM('a', 4, sim)
        b = VM('b', 4, sim)
        machine.add_vm(a, pinning=[0, 1, 2, 3])
        machine.add_vm(b, pinning=[0, 1, 2, 3])
        share = machine.fair_share_ns(a, 1 * SEC)
        assert share == 2 * SEC  # half of 4 pCPUs over 1 s

    def test_fair_share_capped_at_vcpu_count(self):
        sim = Simulator()
        machine = Machine(sim, n_pcpus=4)
        a = VM('a', 1, sim)
        machine.add_vm(a, pinning=[0])
        share = machine.fair_share_ns(a, 1 * SEC)
        assert share == 1 * SEC  # one vCPU can't use 4 pCPUs

    def test_bad_pinning_length_rejected(self):
        sim = Simulator()
        machine = Machine(sim, n_pcpus=2)
        vm = VM('vm', 2, sim)
        with pytest.raises(ValueError):
            machine.add_vm(vm, pinning=[0])
