"""Behavioural tests for the credit scheduler."""

import pytest

from repro.hypervisor import Machine, VM
from repro.simkernel import Simulator
from repro.simkernel.units import MS, SEC
from repro.workloads import Compute

from conftest import build_vm


def hog():
    while True:
        yield Compute(10 * MS)


class TestFairSharing:
    def test_two_equal_vms_split_a_pcpu(self):
        sim = Simulator(seed=1)
        machine = Machine(sim, n_pcpus=1)
        __, k1 = build_vm(sim, machine, 'a', pinning=[0])
        __, k2 = build_vm(sim, machine, 'b', pinning=[0])
        k1.spawn('h1', hog())
        k2.spawn('h2', hog())
        machine.start()
        sim.run_until(2 * SEC)
        run_a = machine.vms[0].total_runstate(sim.now)[0]
        run_b = machine.vms[1].total_runstate(sim.now)[0]
        assert abs(run_a - run_b) < 0.1 * 2 * SEC
        assert run_a + run_b > 1.9 * SEC  # work conserving

    def test_three_vms_each_get_a_third(self):
        sim = Simulator(seed=2)
        machine = Machine(sim, n_pcpus=1)
        kernels = []
        for name in ('a', 'b', 'c'):
            __, k = build_vm(sim, machine, name, pinning=[0])
            kernels.append(k)
        for i, k in enumerate(kernels):
            k.spawn('h%d' % i, hog())
        machine.start()
        sim.run_until(3 * SEC)
        for vm in machine.vms:
            run = vm.total_runstate(sim.now)[0]
            assert 0.75 * SEC < run < 1.35 * SEC

    def test_higher_weight_gets_more_cpu(self):
        sim = Simulator(seed=3)
        machine = Machine(sim, n_pcpus=1)
        heavy = VM('heavy', 1, sim, weight=512)
        light = VM('light', 1, sim, weight=256)
        machine.add_vm(heavy, pinning=[0])
        machine.add_vm(light, pinning=[0])
        from repro.guestos import GuestKernel
        kh = GuestKernel(sim, heavy, machine)
        kl = GuestKernel(sim, light, machine)
        kh.spawn('h', hog())
        kl.spawn('l', hog())
        machine.start()
        sim.run_until(3 * SEC)
        run_heavy = heavy.total_runstate(sim.now)[0]
        run_light = light.total_runstate(sim.now)[0]
        assert run_heavy > run_light * 1.3


class TestSliceBehaviour:
    def test_alternation_at_slice_granularity(self):
        """Two competing vCPUs swap on ~30 ms boundaries — the delay
        that causes LHP (Figure 1b's staircase)."""
        sim = Simulator(seed=4)
        machine = Machine(sim, n_pcpus=1)
        __, k1 = build_vm(sim, machine, 'a', pinning=[0])
        __, k2 = build_vm(sim, machine, 'b', pinning=[0])
        k1.spawn('h1', hog())
        k2.spawn('h2', hog())
        machine.start()
        sim.run_until(1 * SEC)
        preemptions = sim.trace.counters['hv.preemptions']
        # ~1000ms / 30ms slices = ~33 switches; allow slack.
        assert 20 <= preemptions <= 50

    def test_single_vcpu_runs_unpreempted(self):
        sim = Simulator(seed=5)
        machine = Machine(sim, n_pcpus=1)
        __, k = build_vm(sim, machine, 'solo', pinning=[0])
        k.spawn('h', hog())
        machine.start()
        sim.run_until(1 * SEC)
        assert sim.trace.counters['hv.preemptions'] == 0
        run = machine.vms[0].total_runstate(sim.now)[0]
        assert run == 1 * SEC


class TestWakeBoosting:
    def test_waking_vcpu_preempts_hog(self):
        """An idle-blocked vCPU that wakes gets BOOST priority and
        preempts a CPU-bound competitor almost immediately."""
        sim = Simulator(seed=6)
        machine = Machine(sim, n_pcpus=1)
        __, kb = build_vm(sim, machine, 'hog', pinning=[0])
        __, ks = build_vm(sim, machine, 'sleeper', pinning=[0])
        kb.spawn('h', hog())

        def sleepy():
            from repro.workloads import Sleep
            while True:
                yield Sleep(50 * MS)
                yield Compute(1 * MS)
        ks.spawn('s', sleepy())
        machine.start()
        sim.run_until(1 * SEC)
        run_sleepy = machine.vms[1].total_runstate(sim.now)[0]
        # The sleeper needs ~1ms per 51ms cycle = ~19ms total. Without
        # boosting it would be starved to slice boundaries.
        assert run_sleepy > 15 * MS
        steal_sleepy = machine.vms[1].total_runstate(sim.now)[1]
        assert steal_sleepy < 50 * MS


class TestBlockYield:
    def test_blocked_vm_consumes_nothing(self):
        sim = Simulator(seed=7)
        machine = Machine(sim, n_pcpus=1)
        __, k = build_vm(sim, machine, 'idle', pinning=[0])
        machine.start()
        sim.run_until(500 * MS)
        run, __, blocked = machine.vms[0].total_runstate(sim.now)
        assert run == 0
        assert blocked == 500 * MS

    def test_work_conserving_when_competitor_blocks(self):
        sim = Simulator(seed=8)
        machine = Machine(sim, n_pcpus=1)
        __, kh = build_vm(sim, machine, 'hog', pinning=[0])
        __, ki = build_vm(sim, machine, 'idle', pinning=[0])
        kh.spawn('h', hog())
        machine.start()
        sim.run_until(1 * SEC)
        run_hog = machine.vms[0].total_runstate(sim.now)[0]
        assert run_hog == 1 * SEC


class TestDeferredPreemptionGuard:
    def test_complete_deferred_without_deferral_raises(self):
        sim = Simulator(seed=9)
        machine = Machine(sim, n_pcpus=1)
        vm, k = build_vm(sim, machine, 'a', pinning=[0])
        k.spawn('h', hog())
        machine.start()
        sim.run_until(10 * MS)
        with pytest.raises(RuntimeError):
            machine.scheduler.complete_deferred_preemption(
                vm.vcpus[0], block=False)
