"""The ``pytest -m sanitizer`` job: re-run the whole tier-1 suite with
the runtime scheduler sanitizer enabled at every event (see
``tests/conftest.py``), asserting zero invariant violations anywhere.

Deselected from plain ``pytest`` runs via ``addopts`` so the default
suite stays fast.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.mark.sanitizer
def test_full_suite_with_sanitizer_at_every_event():
    env = dict(os.environ, REPRO_SANITIZER='1')
    env['PYTHONPATH'] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, 'src'),
                    env.get('PYTHONPATH')) if p)
    result = subprocess.run(
        [sys.executable, '-m', 'pytest', 'tests', '-q',
         '-m', 'not sanitizer', '-p', 'no:cacheprovider'],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True)
    assert result.returncode == 0, (
        'sanitized suite failed:\n%s\n%s'
        % (result.stdout[-4000:], result.stderr[-2000:]))
