"""Unit tests for the deterministic fault-injection plane."""

import pytest

from repro.faults import (
    CAMPAIGNS,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    HypercallFaultError,
    get_campaign,
    parse_fault_plan,
)
from repro.hypervisor.channels import VIRQ_SA_UPCALL
from repro.simkernel import Simulator
from repro.simkernel.units import MS, SEC, US

from conftest import build_machine, build_vm
from repro.core import IRSConfig, install_irs
from repro.workloads import Compute


def hog():
    while True:
        yield Compute(10 * MS)


def faulted_irs_scenario(seed, plan, config=None):
    sim = Simulator(seed=seed)
    machine = build_machine(sim, 2)
    fg_vm, kernel = build_vm(sim, machine, 'fg', n_vcpus=2, pinning=[0, 1])
    __, hk = build_vm(sim, machine, 'hog', pinning=[0])
    sender = install_irs(machine, [kernel],
                         config or IRSConfig(degradation_enabled=True))
    injector = plan.build(sim).attach(machine)
    kernel.spawn('w', hog(), gcpu_index=0)
    hk.spawn('hog', hog())
    machine.start()
    return sim, machine, kernel, sender, injector


class TestSpecs:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec('cosmic_ray', 0.5)

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            FaultSpec('virq_drop', 1.5)
        with pytest.raises(ValueError):
            FaultSpec('virq_drop', -0.1)

    def test_vm_and_virq_matching(self):
        sim = Simulator(seed=0)
        machine = build_machine(sim, 1)
        vm, __ = build_vm(sim, machine, 'fg', pinning=[0])
        vcpu = vm.vcpus[0]
        spec = FaultSpec('virq_drop', 1.0, virq=VIRQ_SA_UPCALL, vm='fg')
        assert spec.matches_virq(VIRQ_SA_UPCALL, vcpu)
        assert not spec.matches_virq('VIRQ_TIMER', vcpu)
        assert not FaultSpec('virq_drop', 1.0,
                             vm='bg').matches_virq(VIRQ_SA_UPCALL, vcpu)

    def test_every_kind_has_a_campaign_exercising_it(self):
        covered = set()
        for factory in CAMPAIGNS.values():
            covered.update(spec.kind for spec in factory().specs)
        assert covered == set(FAULT_KINDS)


class TestCampaignRegistry:
    def test_get_campaign_canonical(self):
        plan = get_campaign('sa-loss-30')
        assert plan.name == 'sa-loss-30'
        assert plan.specs[0].probability == pytest.approx(0.3)

    def test_get_campaign_parametric(self):
        plan = get_campaign('sa-loss-37')
        assert plan.specs[0].probability == pytest.approx(0.37)

    def test_get_campaign_unknown(self):
        with pytest.raises(ValueError):
            get_campaign('meteor-strike')

    def test_parse_merges_comma_separated(self):
        plan = parse_fault_plan('sa-loss-10,flaky-migrator-20')
        kinds = [spec.kind for spec in plan.specs]
        assert 'virq_drop' in kinds and 'migrator_fail' in kinds
        assert parse_fault_plan('') is None


class TestDeterminism:
    def _trace(self, seed):
        sim, machine, kernel, sender, injector = faulted_irs_scenario(
            seed, get_campaign('full-chaos'))
        sim.run_until(2 * SEC)
        return (sim.events_processed,
                tuple(sorted(sim.trace.counters.items())),
                dict(injector.injected))

    def test_same_seed_same_injections(self):
        assert self._trace(5) == self._trace(5)

    def test_different_seed_different_schedule(self):
        assert self._trace(5) != self._trace(6)

    def test_attached_but_quiet_injector_changes_nothing(self):
        """Zero-probability specs draw from the fault streams yet leave
        the simulation schedule untouched (independent named streams)."""
        def run(with_injector):
            sim = Simulator(seed=9)
            machine = build_machine(sim, 2)
            __, kernel = build_vm(sim, machine, 'fg', n_vcpus=2,
                                  pinning=[0, 1])
            __, hk = build_vm(sim, machine, 'hog', pinning=[0])
            install_irs(machine, [kernel])
            if with_injector:
                FaultInjector(sim, [FaultSpec('virq_drop', 0.0)
                                    ]).attach(machine)
            kernel.spawn('w', hog(), gcpu_index=0)
            hk.spawn('hog', hog())
            machine.start()
            sim.run_until(1 * SEC)
            counters = {k: v for k, v in sim.trace.counters.items()
                        if not k.startswith('faults.')}
            return sim.events_processed, tuple(sorted(counters.items()))
        assert run(False) == run(True)


class TestInjection:
    def test_sa_loss_drops_and_counts(self):
        sim, machine, kernel, sender, injector = faulted_irs_scenario(
            3, get_campaign('sa-loss-50'))
        sim.run_until(2 * SEC)
        assert injector.injected['virq_drop'] > 0
        assert sim.trace.counters['faults.virq_drop'] > 0
        assert (sim.trace.counters['faults.injected']
                == sum(injector.injected.values()))

    def test_probe_errors_raise_hypercall_fault(self):
        sim = Simulator(seed=1)
        machine = build_machine(sim, 1)
        vm, kernel = build_vm(sim, machine, 'fg', pinning=[0])
        plan = get_campaign('probe-errors-100')
        plan.build(sim).attach(machine)
        with pytest.raises(HypercallFaultError):
            machine.hypercalls.vcpu_op_get_runstate(vm.vcpus[0])

    def test_stale_probe_returns_cached_state(self):
        sim = Simulator(seed=1)
        machine = build_machine(sim, 1)
        vm, kernel = build_vm(sim, machine, 'fg', pinning=[0])
        machine.start()
        vcpu = vm.vcpus[0]
        injector = FaultInjector(
            sim, [FaultSpec('runstate_stale', 1.0)]).attach(machine)
        # No truthful observation yet: falls back to the real state.
        assert (machine.hypercalls.vcpu_op_get_runstate(vcpu)
                == vcpu.runstate)
        # With a cached observation, the probe reports it no matter
        # what the real runstate has moved to since.
        injector._stale_runstates[vcpu] = 'runnable'
        assert machine.hypercalls.vcpu_op_get_runstate(vcpu) == 'runnable'

    def test_spec_limit_caps_firing(self):
        sim, machine, kernel, sender, injector = faulted_irs_scenario(
            3, FaultPlan('capped',
                         [FaultSpec('virq_drop', 1.0,
                                    virq=VIRQ_SA_UPCALL, limit=2)]))
        sim.run_until(2 * SEC)
        assert injector.injected['virq_drop'] == 2

    def test_summary_names_fired_specs(self):
        sim, machine, kernel, sender, injector = faulted_irs_scenario(
            3, get_campaign('sa-loss-50'))
        sim.run_until(1 * SEC)
        summary = injector.summary()
        assert 'virq_drop' in summary
