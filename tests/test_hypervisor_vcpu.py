"""Unit tests for vCPU runstate accounting."""

from repro.hypervisor.vcpu import (
    PRI_UNDER,
    RUNSTATE_BLOCKED,
    RUNSTATE_OFFLINE,
    RUNSTATE_RUNNABLE,
    RUNSTATE_RUNNING,
    VCpu,
)
from repro.hypervisor.vm import VM
from repro.simkernel import Simulator


def make_vcpu():
    sim = Simulator()
    vm = VM('vm', 1, sim)
    return vm.vcpus[0]


class TestRunstateTransitions:
    def test_initial_state_offline(self):
        vcpu = make_vcpu()
        assert vcpu.runstate == RUNSTATE_OFFLINE

    def test_running_time_charged(self):
        vcpu = make_vcpu()
        vcpu.set_runstate(RUNSTATE_RUNNING, 0)
        vcpu.set_runstate(RUNSTATE_RUNNABLE, 100)
        assert vcpu.run_ns == 100
        assert vcpu.steal_ns == 0

    def test_steal_time_charged_for_runnable(self):
        vcpu = make_vcpu()
        vcpu.set_runstate(RUNSTATE_RUNNABLE, 0)
        vcpu.set_runstate(RUNSTATE_RUNNING, 70)
        assert vcpu.steal_ns == 70

    def test_blocked_time_charged(self):
        vcpu = make_vcpu()
        vcpu.set_runstate(RUNSTATE_BLOCKED, 10)
        vcpu.set_runstate(RUNSTATE_RUNNABLE, 60)
        assert vcpu.blocked_ns == 50

    def test_full_cycle_accounting(self):
        vcpu = make_vcpu()
        vcpu.set_runstate(RUNSTATE_RUNNING, 0)
        vcpu.set_runstate(RUNSTATE_RUNNABLE, 30)
        vcpu.set_runstate(RUNSTATE_RUNNING, 50)
        vcpu.set_runstate(RUNSTATE_BLOCKED, 90)
        vcpu.set_runstate(RUNSTATE_RUNNING, 100)
        assert vcpu.run_ns == 70
        assert vcpu.steal_ns == 20
        assert vcpu.blocked_ns == 10


class TestSnapshot:
    def test_snapshot_includes_open_interval(self):
        vcpu = make_vcpu()
        vcpu.set_runstate(RUNSTATE_RUNNING, 0)
        run, steal, blocked = vcpu.snapshot_accounting(40)
        assert run == 40
        assert steal == 0 and blocked == 0

    def test_snapshot_does_not_mutate(self):
        vcpu = make_vcpu()
        vcpu.set_runstate(RUNSTATE_RUNNING, 0)
        vcpu.snapshot_accounting(40)
        assert vcpu.run_ns == 0  # only charged on transition

    def test_snapshot_runnable_open_interval(self):
        vcpu = make_vcpu()
        vcpu.set_runstate(RUNSTATE_RUNNABLE, 5)
        __, steal, __ = vcpu.snapshot_accounting(25)
        assert steal == 20


class TestPredicates:
    def test_predicates_follow_state(self):
        vcpu = make_vcpu()
        vcpu.set_runstate(RUNSTATE_RUNNING, 0)
        assert vcpu.is_running and not vcpu.is_runnable
        vcpu.set_runstate(RUNSTATE_RUNNABLE, 1)
        assert vcpu.is_runnable and not vcpu.is_blocked
        vcpu.set_runstate(RUNSTATE_BLOCKED, 2)
        assert vcpu.is_blocked and not vcpu.is_running

    def test_default_priority_under(self):
        assert make_vcpu().priority == PRI_UNDER

    def test_name_includes_vm(self):
        vcpu = make_vcpu()
        assert vcpu.name == 'vm.v0'
