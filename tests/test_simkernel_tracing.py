"""Unit tests for tracing and counters."""

from repro.simkernel.tracing import Tracer
from repro.simkernel.units import (
    MS,
    SEC,
    US,
    format_ns,
    ns_to_ms,
    ns_to_sec,
    ns_to_us,
)


class TestCounters:
    def test_count_increments(self):
        t = Tracer()
        t.count('a')
        t.count('a', 2)
        assert t.counters['a'] == 3

    def test_counters_work_when_tracing_disabled(self):
        t = Tracer(enabled=False)
        t.count('x')
        assert t.counters['x'] == 1

    def test_add_time(self):
        t = Tracer()
        t.add_time('busy', 500)
        t.add_time('busy', 250)
        assert t.counters['busy'] == 750

    def test_missing_counter_is_zero(self):
        t = Tracer()
        assert t.counters['nothing'] == 0


class TestRecords:
    def test_emit_disabled_records_nothing(self):
        t = Tracer(enabled=False)
        t.emit(1, 'cat', x=1)
        assert t.records == []

    def test_emit_enabled_records(self):
        t = Tracer(enabled=True)
        t.emit(5, 'sched', vcpu='v0')
        assert len(t.records) == 1
        assert t.records[0].time == 5
        assert t.records[0].category == 'sched'
        assert t.records[0].detail == {'vcpu': 'v0'}

    def test_category_filter(self):
        t = Tracer(enabled=True, categories=['keep'])
        t.emit(1, 'keep')
        t.emit(2, 'drop')
        assert len(t.records) == 1

    def test_records_for(self):
        t = Tracer(enabled=True)
        t.emit(1, 'a')
        t.emit(2, 'b')
        t.emit(3, 'a')
        assert [r.time for r in t.records_for('a')] == [1, 3]

    def test_clear(self):
        t = Tracer(enabled=True)
        t.emit(1, 'a')
        t.count('c')
        t.clear()
        assert t.records == []
        assert t.counters['c'] == 0


class TestRingBuffer:
    def test_cap_keeps_newest(self):
        t = Tracer(enabled=True, max_records=3)
        for i in range(5):
            t.emit(i, 'cat')
        assert [r.time for r in t.records] == [2, 3, 4]
        assert t.dropped == 2
        assert t.counters['trace.dropped'] == 2

    def test_below_cap_drops_nothing(self):
        t = Tracer(enabled=True, max_records=10)
        t.emit(1, 'cat')
        assert t.dropped == 0
        assert len(t.records) == 1

    def test_unbounded_with_none(self):
        t = Tracer(enabled=True, max_records=None)
        for i in range(5):
            t.emit(i, 'cat')
        assert len(t.records) == 5

    def test_invalid_cap_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            Tracer(max_records=0)

    def test_clear_resets_ring(self):
        t = Tracer(enabled=True, max_records=2)
        for i in range(4):
            t.emit(i, 'cat')
        t.clear()
        assert t.records == []
        assert t.dropped == 0
        t.emit(9, 'cat')
        assert [r.time for r in t.records] == [9]

    def test_records_for_respects_ring_order(self):
        t = Tracer(enabled=True, max_records=4)
        for i in range(6):
            t.emit(i, 'a' if i % 2 == 0 else 'b')
        assert [r.time for r in t.records_for('a')] == [2, 4]


class TestObservabilityHooks:
    def test_spans_and_metrics_attached(self):
        t = Tracer()
        assert not t.spans.enabled
        assert t.spans.registry is t.metrics
        assert len(t.metrics) == 0

    def test_span_duration_feeds_metrics(self):
        t = Tracer()
        t.spans.enabled = True
        span = t.spans.begin(0, 'sa.offer', 'v0')
        t.spans.end(23_000, span)
        assert t.metrics.histogram('sa.offer').count == 1

    def test_clear_resets_spans_and_metrics(self):
        t = Tracer()
        t.spans.enabled = True
        t.spans.instant(1, 'p', 'v0')
        t.clear()
        assert t.spans.spans == []
        assert len(t.metrics) == 0


class TestUnits:
    def test_conversions(self):
        assert ns_to_ms(30 * MS) == 30.0
        assert ns_to_us(5 * US) == 5.0
        assert ns_to_sec(2 * SEC) == 2.0

    def test_format_ns_picks_unit(self):
        assert format_ns(500) == '500ns'
        assert format_ns(1500) == '1.500us'
        assert format_ns(30 * MS) == '30.000ms'
        assert format_ns(2 * SEC) == '2.000s'
