"""Tests for the CLI entry point and smoke tests of figure drivers."""

import pytest

from repro.experiments.cli import main
from repro.experiments.figures import (
    ALL_FIGURES,
    fig1a,
    fig5,
    fairness_check,
    sa_latency,
    sa_overhead,
)
from repro.experiments.harness import set_default_observability
from repro.obs.exporters import load_chrome_trace, validate_chrome_trace


@pytest.fixture(autouse=True)
def _reset_observability():
    """CLI flags install module-global defaults; keep tests isolated."""
    yield
    set_default_observability(None)


class TestCli:
    def test_list_prints_all_figures(self, capsys):
        assert main(['list']) == 0
        out = capsys.readouterr().out
        for name in ALL_FIGURES:
            assert name in out

    def test_run_single_figure(self, capsys):
        assert main(['fig1a']) == 0
        out = capsys.readouterr().out
        assert 'Figure 1(a)' in out
        assert 'raytrace' in out

    def test_unknown_figure_errors(self):
        with pytest.raises(SystemExit):
            main(['figZZ'])

    def test_output_to_file(self, tmp_path, capsys):
        target = tmp_path / 'out.txt'
        assert main(['sa_overhead', '--out', str(target)]) == 0
        content = target.read_text()
        assert 'SA processing delay' in content

    def test_dashed_figure_alias(self, capsys):
        assert main(['sa-latency']) == 0
        out = capsys.readouterr().out
        assert 'SA-protocol phase latency' in out
        assert 'sa.offer' in out

    def test_trace_out_writes_valid_trace(self, tmp_path, capsys):
        target = tmp_path / 'trace.json'
        assert main(['sa-latency', '--trace-out', str(target)]) == 0
        events = load_chrome_trace(str(target))
        assert events
        assert validate_chrome_trace(events) == []

    def test_trace_out_unwritable_is_clean_error(self, tmp_path, capsys):
        target = tmp_path / 'missing-dir' / 'trace.json'
        with pytest.raises(SystemExit) as excinfo:
            main(['sa-latency', '--trace-out', str(target)])
        assert excinfo.value.code == 2          # argparse error, not a
        err = capsys.readouterr().err           # traceback
        assert 'cannot write --trace-out file' in err

    def test_unknown_strategy_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(['sa-latency', '--strategy', 'bogus'])
        assert 'unknown strategy' in capsys.readouterr().err

    def test_strategy_forwarded_to_driver(self, capsys):
        assert main(['sa-latency', '--strategy', 'vanilla']) == 0
        out = capsys.readouterr().out
        assert 'never issues scheduler activations' in out


class TestFigureDrivers:
    """Smoke tests on small figure slices; the benchmarks exercise the
    full grids."""

    def test_fig1a_notes_structure(self):
        result = fig1a(quick=True)
        assert set(result.notes) == {'fluidanimate', 'UA', 'raytrace'}
        assert all(v > 1.0 for v in result.notes.values())

    def test_fig5_subset(self):
        result = fig5(quick=True, apps=['streamcluster'],
                      interferers=['hogs'])
        assert len(result.rows) == 3           # 1/2/4-inter
        key = ('hogs', 'streamcluster', 1, 'irs')
        assert result.notes[key] > 10

    def test_sa_overhead_notes(self):
        result = sa_overhead(quick=True)
        assert 20 <= result.notes['mean_us'] <= 26

    def test_sa_latency_band(self):
        result = sa_latency(quick=True)
        offer = result.notes['sa.offer']
        assert offer['count'] > 0
        assert 20 <= offer['p50_us'] <= 26
        assert 20 <= offer['p99_us'] <= 26

    def test_sa_latency_empty_explained(self):
        result = sa_latency(quick=True, strategy='vanilla')
        assert 'empty_reason' in result.notes
        assert len(result.rows) == 1
        assert 'vanilla' in result.notes['empty_reason']

    def test_fairness_check_notes(self):
        result = fairness_check(quick=True, apps=('streamcluster',))
        assert ('streamcluster', 'vanilla') in result.notes
        assert ('streamcluster', 'irs') in result.notes

    def test_table_renders_for_every_driver_row(self):
        result = fig1a(quick=True)
        table = result.table()
        assert table.count('\n') >= len(result.rows) + 2


class TestCliJobsAndCache:
    def test_jobs_matches_serial_output(self, tmp_path, capsys):
        assert main(['fig1a', '--no-cache']) == 0
        serial = capsys.readouterr().out
        assert main(['fig1a', '--no-cache', '--jobs', '2']) == 0
        parallel = capsys.readouterr().out
        # Strip the wall-clock line; tables must be byte-identical.
        strip = (lambda text: '\n'.join(
            l for l in text.splitlines() if not l.startswith('(fig1a:')))
        assert strip(parallel) == strip(serial)

    def test_jobs_with_trace_out_is_clean_error(self, tmp_path, capsys):
        target = tmp_path / 'trace.json'
        with pytest.raises(SystemExit) as excinfo:
            main(['sa-latency', '--jobs', '2', '--trace-out', str(target)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert 'cannot be combined with --trace-out' in err
        assert 'worker process' in err

    def test_jobs_env_default(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv('REPRO_JOBS', '2')
        assert main(['fig1a', '--no-cache']) == 0
        assert 'Figure 1(a)' in capsys.readouterr().out

    def test_jobs_env_conflicts_with_trace_out(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.setenv('REPRO_JOBS', '2')
        target = tmp_path / 'trace.json'
        with pytest.raises(SystemExit):
            main(['sa-latency', '--trace-out', str(target)])
        err = capsys.readouterr().err
        assert 'REPRO_JOBS=2' in err

    def test_jobs_env_invalid(self, capsys, monkeypatch):
        monkeypatch.setenv('REPRO_JOBS', 'many')
        with pytest.raises(SystemExit):
            main(['fig1a'])
        assert 'REPRO_JOBS must be an integer' in capsys.readouterr().err

    def test_jobs_zero_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(['fig1a', '--jobs', '0'])
        assert '--jobs must be >= 1' in capsys.readouterr().err

    def test_cache_populates_and_reports(self, tmp_path, capsys,
                                         monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(['sa_overhead']) == 0
        out = capsys.readouterr().out
        assert 'runcache:' in out
        assert (tmp_path / '.benchmarks' / 'runcache').is_dir()
        assert main(['sa_overhead']) == 0
        assert 'SA processing delay' in capsys.readouterr().out

    def test_no_cache_skips_cache_dir(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(['sa_overhead', '--no-cache']) == 0
        assert 'runcache:' not in capsys.readouterr().out
        assert not (tmp_path / '.benchmarks').exists()


class TestCliSpecs:
    def test_cli_runs_spec_file(self, tmp_path, capsys):
        import json
        spec = {'app': 'x264', 'strategy': 'irs',
                'interference': {'width': 1},
                'workload': {'scale': 0.1}, 'name': 'demo'}
        path = tmp_path / 'spec.json'
        path.write_text(json.dumps(spec))
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert 'demo' in out
        assert 'Spec results' in out
