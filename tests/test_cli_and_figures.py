"""Tests for the CLI entry point and smoke tests of figure drivers."""

import pytest

from repro.experiments.cli import main
from repro.experiments.figures import (
    ALL_FIGURES,
    fig1a,
    fig5,
    fairness_check,
    sa_overhead,
)


class TestCli:
    def test_list_prints_all_figures(self, capsys):
        assert main(['list']) == 0
        out = capsys.readouterr().out
        for name in ALL_FIGURES:
            assert name in out

    def test_run_single_figure(self, capsys):
        assert main(['fig1a']) == 0
        out = capsys.readouterr().out
        assert 'Figure 1(a)' in out
        assert 'raytrace' in out

    def test_unknown_figure_errors(self):
        with pytest.raises(SystemExit):
            main(['figZZ'])

    def test_output_to_file(self, tmp_path, capsys):
        target = tmp_path / 'out.txt'
        assert main(['sa_overhead', '--out', str(target)]) == 0
        content = target.read_text()
        assert 'SA processing delay' in content


class TestFigureDrivers:
    """Smoke tests on small figure slices; the benchmarks exercise the
    full grids."""

    def test_fig1a_notes_structure(self):
        result = fig1a(quick=True)
        assert set(result.notes) == {'fluidanimate', 'UA', 'raytrace'}
        assert all(v > 1.0 for v in result.notes.values())

    def test_fig5_subset(self):
        result = fig5(quick=True, apps=['streamcluster'],
                      interferers=['hogs'])
        assert len(result.rows) == 3           # 1/2/4-inter
        key = ('hogs', 'streamcluster', 1, 'irs')
        assert result.notes[key] > 10

    def test_sa_overhead_notes(self):
        result = sa_overhead(quick=True)
        assert 20 <= result.notes['mean_us'] <= 26

    def test_fairness_check_notes(self):
        result = fairness_check(quick=True, apps=('streamcluster',))
        assert ('streamcluster', 'vanilla') in result.notes
        assert ('streamcluster', 'irs') in result.notes

    def test_table_renders_for_every_driver_row(self):
        result = fig1a(quick=True)
        table = result.table()
        assert table.count('\n') >= len(result.rows) + 2


class TestCliSpecs:
    def test_cli_runs_spec_file(self, tmp_path, capsys):
        import json
        spec = {'app': 'x264', 'strategy': 'irs',
                'interference': {'width': 1},
                'workload': {'scale': 0.1}, 'name': 'demo'}
        path = tmp_path / 'spec.json'
        path.write_text(json.dumps(spec))
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert 'demo' in out
        assert 'Spec results' in out
