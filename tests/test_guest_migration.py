"""Tests for the vanilla migration stopper (Figure 1b machinery)."""

from repro.guestos.migration import MigrationStopper
from repro.simkernel import Simulator
from repro.simkernel.units import MS, SEC
from repro.workloads import Compute

from conftest import build_machine, build_vm


def hog():
    while True:
        yield Compute(10 * MS)


class TestStopperFastPaths:
    def test_ready_task_moves_without_stopper(self, sim):
        machine, vm, kernel = self._dual_vcpu(sim)
        # Keep gcpu1 busy so balancing does not steal the ready task.
        kernel.spawn('busy', hog(), gcpu_index=1)
        kernel.spawn('a', hog(), gcpu_index=0)
        kernel.spawn('b', hog(), gcpu_index=0)
        sim.run_until(5 * MS)
        target = kernel.gcpus[0].rq.peek_min()
        assert target is not None
        stopper = MigrationStopper(sim, kernel)
        request = stopper.request(target, kernel.gcpus[1])
        sim.run_until(sim.now + 10 * MS)
        assert request.latency_ns is not None
        assert request.latency_ns <= 1 * MS
        assert target.gcpu is kernel.gcpus[1]

    def test_running_task_on_running_vcpu(self, sim):
        machine, vm, kernel = self._dual_vcpu(sim)
        task = kernel.spawn('a', hog(), gcpu_index=0)
        sim.run_until(5 * MS)
        stopper = MigrationStopper(sim, kernel)
        request = stopper.request(task, kernel.gcpus[1])
        sim.run_until(sim.now + 50 * MS)
        # Stopper wakeup + context switch ≈ 1 ms.
        assert request.latency_ns is not None
        assert request.latency_ns <= 2 * MS
        assert task.gcpu is kernel.gcpus[1]

    def _dual_vcpu(self, sim):
        machine = build_machine(sim, 2)
        vm, kernel = build_vm(sim, machine, 'vm', n_vcpus=2,
                              pinning=[0, 1])
        machine.start()
        return machine, vm, kernel


class TestStopperPreemptedPath:
    def test_migration_waits_for_preempted_vcpu(self, sim):
        """The defining measurement of Figure 1(b): stop work on a
        preempted vCPU waits for the vCPU's next slice."""
        machine = build_machine(sim, 2)
        vm, kernel = build_vm(sim, machine, 'vm', n_vcpus=2,
                              pinning=[0, 1])
        __, hk = build_vm(sim, machine, 'hog', pinning=[0])
        hk.spawn('hog', hog())
        task = kernel.spawn('t', hog(), gcpu_index=0)
        machine.start()
        # Find a moment when the source vCPU is preempted.
        while not vm.vcpus[0].is_runnable or task.cpu_ns == 0:
            sim.run_until(sim.now + 1 * MS)
            if sim.now > 5 * SEC:
                raise AssertionError('vCPU never preempted')
        stopper = MigrationStopper(sim, kernel)
        request = stopper.request(task, kernel.gcpus[1])
        assert request.latency_ns is None    # not yet complete
        sim.run_until(sim.now + 1 * SEC)
        assert request.latency_ns is not None
        # It had to wait for the hog's remaining slice: >> the 1 ms
        # fast-path latency.
        assert request.latency_ns > 2 * MS
        assert task.gcpu is kernel.gcpus[1]

    def test_completed_requests_recorded(self, sim):
        machine = build_machine(sim, 2)
        vm, kernel = build_vm(sim, machine, 'vm', n_vcpus=2,
                              pinning=[0, 1])
        task = kernel.spawn('t', hog(), gcpu_index=0)
        machine.start()
        sim.run_until(5 * MS)
        stopper = MigrationStopper(sim, kernel)
        stopper.request(task, kernel.gcpus[1])
        sim.run_until(sim.now + 50 * MS)
        assert len(stopper.completed) == 1


class TestProbeStaircase:
    def test_latency_monotone_in_interference(self):
        """More interfering VMs, longer migration latency — the
        Figure 1(b) staircase."""
        from repro.experiments import run_migration_probe
        means = []
        for n_vms in (0, 1, 3):
            lats = [run_migration_probe(n_vms, seed=s) for s in range(12)]
            lats = [l for l in lats if l is not None]
            means.append(sum(lats) / len(lats))
        assert means[0] < means[1] < means[2]
        assert means[0] <= 2 * MS            # ~1 ms alone
        assert means[1] > 10 * MS            # slice-scale once contended
