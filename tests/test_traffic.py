"""Tests for the open-loop traffic & serving plane: arrival-process
determinism, queue-full shedding, request routing around failures,
SLO accounting, autoscaler hysteresis, and the run_traffic pipeline
integration. The conftest sanitizer fixture validates scheduler
invariants after every test."""

import json

import pytest

from repro.cluster import Cluster, HostSpec, VmRequest
from repro.experiments import SpecError, run_specs, traffic_spec
from repro.simkernel import Simulator
from repro.simkernel.rng import RngRegistry
from repro.simkernel.units import MS, SEC
from repro.traffic import (
    ARRIVAL_KINDS,
    OpenLoopServerWorkload,
    RequestRouter,
    SloAutoscaler,
    SloPolicy,
    SloTracker,
    TrafficService,
    make_arrivals,
    run_traffic,
)

from conftest import single_vm_machine

pytestmark = pytest.mark.traffic


class TestArrivalDeterminism:
    @pytest.mark.parametrize('kind', ARRIVAL_KINDS)
    def test_same_seed_identical(self, kind):
        process = make_arrivals(kind, 800)
        first = process.times(RngRegistry(7), 200)
        second = process.times(RngRegistry(7), 200)
        assert first == second

    @pytest.mark.parametrize('kind', ARRIVAL_KINDS)
    def test_different_seed_differs(self, kind):
        process = make_arrivals(kind, 800)
        assert (process.times(RngRegistry(7), 200)
                != process.times(RngRegistry(8), 200))

    @pytest.mark.parametrize('kind', ARRIVAL_KINDS)
    def test_mean_rate_tracks_target(self, kind):
        times = make_arrivals(kind, 1000).times(RngRegistry(3), 3000)
        rate = len(times) / (times[-1] / SEC)
        assert 700 <= rate <= 1400

    def test_gaps_are_positive_ints(self):
        rng = RngRegistry(1)
        gen = make_arrivals('bursty', 500).gaps(rng)
        for __ in range(500):
            gap = next(gen)
            assert isinstance(gap, int) and gap >= 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_arrivals('tidal', 100)

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            make_arrivals('poisson', 0)

    def test_diurnal_rate_follows_ramp(self):
        process = make_arrivals('diurnal', 1000, period_ns=400 * MS,
                                ramp=(0.5, 2.0))
        assert process.rate_at(0) == 500
        assert process.rate_at(250 * MS) == 2000
        assert process.rate_at(450 * MS) == 500   # wraps


class TestSloTracker:
    def _tracker(self, **kw):
        return SloTracker(SloPolicy(p99_target_ns=10 * MS,
                                    window_ns=100 * MS, **kw))

    def test_attainment_counts_sheds_as_violations(self):
        tracker = self._tracker()
        for __ in range(8):
            tracker.observe(50 * MS, 5 * MS)
        tracker.observe(50 * MS, 50 * MS)
        tracker.observe_shed(50 * MS)
        assert tracker.total == 10
        assert tracker.attainment() == pytest.approx(0.8)
        assert tracker.error_rate() == pytest.approx(0.1)

    def test_burn_rate_windows_forget_old_violations(self):
        tracker = self._tracker(attainment_target=0.9)
        for __ in range(10):
            tracker.observe(50 * MS, 50 * MS)     # all bad, early
        for i in range(10):
            tracker.observe(1 * SEC + i * MS, 1 * MS)
        # Recent 5 windows hold only good samples.
        assert tracker.burn_rate(1 * SEC + 20 * MS) == 0.0
        assert tracker.attainment() == pytest.approx(0.5)

    def test_idle_service_meets_slo(self):
        tracker = self._tracker()
        assert tracker.attainment() == 1.0
        assert tracker.meets_slo()

    def test_snapshot_publishes_gauges(self):
        from repro.obs.histograms import MetricsRegistry
        registry = MetricsRegistry()
        tracker = SloTracker(SloPolicy(), registry=registry)
        tracker.observe(0, 1 * MS)
        summary = tracker.snapshot(100 * MS)
        assert summary['requests'] == 1
        assert registry.gauge('traffic.slo.good').value == 1
        assert registry.gauge('traffic.slo.attainment_ppm').value == 1_000_000


class TestReplicaShedding:
    def _workload(self, sim, queue_capacity, rate=4000, service_ns=5 * MS):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        tracker = SloTracker(SloPolicy())
        wl = OpenLoopServerWorkload(
            sim, kernel, rate_rps=rate, service_ns=service_ns,
            queue_capacity=queue_capacity, slo=tracker,
            events=None).install()
        return wl, tracker

    def test_queue_full_sheds_and_accounts(self, sim):
        wl, tracker = self._workload(sim, queue_capacity=4)
        sim.run_until(1 * SEC)
        replica = wl.replica
        assert replica.shed > 0
        # Conservation: every injected request was accepted or shed.
        assert wl.injected == replica.enqueued + replica.shed
        assert tracker.sheds == replica.shed
        assert sim.trace.counters['traffic.shed'] == replica.shed

    def test_ample_queue_never_sheds(self, sim):
        wl, tracker = self._workload(sim, queue_capacity=10_000, rate=300,
                                     service_ns=1 * MS)
        sim.run_until(1 * SEC)
        assert wl.replica.shed == 0
        assert wl.completed > 200
        assert tracker.sheds == 0

    def test_shed_events_are_rate_limited(self, sim):
        from repro.obs.eventlog import EVENT_SHED, EventLog
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=1, n_vcpus=1)
        events = EventLog()
        wl = OpenLoopServerWorkload(
            sim, kernel, rate_rps=5000, service_ns=5 * MS,
            queue_capacity=2, events=events,
            shed_report_ns=100 * MS).install()
        sim.run_until(1 * SEC)
        shed_events = [e for e in events.to_dicts()
                       if e['kind'] == EVENT_SHED]
        assert shed_events
        assert len(shed_events) <= 11        # ~1 per 100ms window
        assert sum(e['dropped'] for e in shed_events) <= wl.shed

    def test_queueing_delay_recorded_separately(self, sim):
        wl, __ = self._workload(sim, queue_capacity=10_000, rate=900,
                                service_ns=2 * MS)
        sim.run_until(1 * SEC)
        replica = wl.replica
        assert replica.latency.count == replica.completed
        # Queue wait is recorded at dequeue; at most one in-flight
        # request per worker has a wait sample but no e2e sample yet.
        in_flight = replica.queue_wait.count - replica.completed
        assert 0 <= in_flight <= len(replica.kernel.gcpus)
        # e2e >= queueing delay for the same request stream.
        assert replica.latency.mean() >= replica.queue_wait.mean()
        hist = sim.trace.metrics.histogram('req.queue')
        assert hist.count == replica.queue_wait.count

    def test_retire_sheds_backlog(self, sim):
        wl, tracker = self._workload(sim, queue_capacity=64, rate=4000,
                                     service_ns=20 * MS)
        sim.run_until(200 * MS)
        backlog = wl.replica.queue_depth
        assert backlog > 0
        before = wl.replica.shed
        wl.replica.retire()
        assert wl.replica.shed == before + backlog
        assert wl.replica.queue_depth == 0


def _service_cluster(sim, n_hosts=3, replicas=2, **service_kw):
    specs = [HostSpec('h%d' % i, n_pcpus=4, strategy='vanilla')
             for i in range(n_hosts)]
    cluster = Cluster(sim, specs, policy='first_fit', rebalance=None)
    service = TrafficService(sim, cluster, replica_vcpus=2, **service_kw)
    cluster.start()
    deployed = []
    for __ in range(replicas):
        __, replica = service.deploy_replica(autoscaled=False)
        assert replica is not None
        deployed.append(replica)
    return cluster, service, deployed


class TestRequestRouter:
    def test_round_robin_cycles(self, sim):
        cluster, service, (r0, r1) = _service_cluster(
            sim, router_policy='round_robin')
        sim.run_until(10 * MS)
        router = service.router
        picks = [router.route(sim.now).name for __ in range(4)]
        assert picks == ['srv0', 'srv1', 'srv0', 'srv1']

    def test_least_queue_prefers_shortest(self, sim):
        cluster, service, (r0, r1) = _service_cluster(
            sim, router_policy='least_queue')
        sim.run_until(10 * MS)
        # Load srv0's queue directly; router must prefer srv1.
        for __ in range(5):
            r0.enqueue(sim.now)
        assert service.router.route(sim.now) is r1

    def test_unknown_policy_rejected(self, sim):
        cluster = Cluster(sim, [HostSpec('h0')], policy='first_fit',
                          rebalance=None)
        with pytest.raises(ValueError):
            RequestRouter(sim, cluster, policy='hash_ring')

    def test_retired_replica_leaves_rotation(self, sim):
        cluster, service, (r0, r1) = _service_cluster(sim)
        sim.run_until(10 * MS)
        service.router.routable()            # seed the known set
        assert service.retire_replica(r1)
        assert service.router.routable() == [r0]
        reroutes = [e for e in cluster.events.to_dicts()
                    if e['kind'] == 'traffic.reroute']
        assert [(e['replica'], e['reason']) for e in reroutes] \
            == [('srv1', 'lost')]

    def test_host_failure_reroutes_and_recovery_restores(self, sim):
        # Capacity 2 per host: one 2-vCPU replica each, no spare room,
        # so a crash parks the orphan until its host reboots.
        specs = [HostSpec('h%d' % i, n_pcpus=2, capacity_vcpus=2)
                 for i in range(2)]
        cluster = Cluster(sim, specs, policy='first_fit', rebalance=None)
        service = TrafficService(sim, cluster, replica_vcpus=2)
        cluster.start()
        __, r0 = service.deploy_replica(autoscaled=False)
        __, r1 = service.deploy_replica(autoscaled=False)
        sim.run_until(50 * MS)
        service.router.routable()
        victim_host = cluster.host_of(r1.vm)
        cluster.crash_host(victim_host, down_ns=300 * MS)
        assert cluster.host_of(r1.vm) is None
        assert service.router.routable() == [r0]
        # The host reboots; the parking lot drains back onto it.
        sim.run_until(sim.now + 500 * MS)
        assert cluster.host_of(r1.vm) is not None
        assert r1 in service.router.routable()
        reasons = [(e['replica'], e['reason'])
                   for e in cluster.events.to_dicts()
                   if e['kind'] == 'traffic.reroute']
        assert ('srv1', 'lost') in reasons
        assert ('srv1', 'restored') in reasons


class _FakeCluster:
    def host_of(self, vm):
        return None


class _FakeReplica:
    def __init__(self, name):
        self.name = name
        self.vm = object()
        self.retired = False


class _ScriptedService:
    """Autoscaler harness: burn is whatever the test says it is."""

    def __init__(self, sim, policy=None):
        self.sim = sim
        self.cluster = _FakeCluster()
        self.events = None
        self.tracker = SloTracker(policy or SloPolicy())
        self.replicas = [_FakeReplica('srv0')]
        self.deploys = 0
        self.retires = 0

    def active_replicas(self):
        return [r for r in self.replicas if not r.retired]

    def deploy_replica(self):
        self.deploys += 1
        replica = _FakeReplica('srv%d' % len(self.replicas))
        self.replicas.append(replica)
        return replica.name, replica

    def pick_scaledown_victim(self):
        live = self.active_replicas()
        return live[-1] if len(live) > 1 else None

    def retire_replica(self, replica):
        self.retires += 1
        replica.retired = True
        return True

    def drive(self, now, bad):
        """Record one window's worth of observations at ``now``."""
        for __ in range(20):
            latency = 100 * MS if bad else 1 * MS
            self.tracker.observe(now, latency)


class TestAutoscalerHysteresis:
    def _run(self, sim, service, autoscaler, schedule):
        """``schedule`` maps ms -> bad?; drive burn and run to 2s."""
        for at_ms, bad in schedule:
            sim.at(at_ms * MS, service.drive, at_ms * MS, bad)
        autoscaler.bind(service)
        autoscaler.start()
        sim.run_until(2 * SEC)

    def test_load_step_scales_up_then_down_once(self, sim):
        service = _ScriptedService(sim)
        scaler = SloAutoscaler(min_replicas=1, max_replicas=4,
                               cooldown_ns=400 * MS)
        # Bad burn 0-500ms, clean from there on.
        schedule = [(t, t < 500) for t in range(50, 2000, 50)]
        self._run(sim, service, scaler, schedule)
        assert scaler.scale_ups >= 1
        assert scaler.scale_downs >= 1
        # Hysteresis: the fleet settles back at the floor, and the
        # single step never causes more than 2 up-moves.
        assert scaler.scale_ups <= 2
        assert len(service.active_replicas()) == 1

    def test_oscillating_load_is_rate_limited_by_cooldown(self, sim):
        service = _ScriptedService(sim)
        scaler = SloAutoscaler(min_replicas=1, max_replicas=8,
                               cooldown_ns=400 * MS)
        # Burn flips every 100ms — far faster than the cooldown.
        schedule = [(t, (t // 100) % 2 == 0)
                    for t in range(50, 2000, 50)]
        self._run(sim, service, scaler, schedule)
        actions = scaler.scale_ups + scaler.scale_downs
        # 2s / 400ms cooldown bounds the action rate.
        assert actions <= 6

    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            SloAutoscaler(high_burn=0.5, low_burn=1.0)
        with pytest.raises(ValueError):
            SloAutoscaler(min_replicas=0)


class TestRunTraffic:
    QUICK = dict(n_hosts=2, n_hog_vms=2, n_server_vms=2, rate_rps=1200,
                 warmup_ns=200 * MS, measure_ns=300 * MS)

    def test_deterministic_summary(self):
        first = run_traffic(strategy='irs', seed=3, **self.QUICK).summary()
        second = run_traffic(strategy='irs', seed=3, **self.QUICK).summary()
        assert (json.dumps(first, sort_keys=True)
                == json.dumps(second, sort_keys=True))

    def test_irs_attainment_at_least_vanilla_open_loop(self):
        vanilla = run_traffic(strategy='vanilla', seed=0,
                              measure_ns=500 * MS)
        irs = run_traffic(strategy='irs', seed=0, measure_ns=500 * MS)
        assert (irs.summary()['slo']['attainment']
                >= vanilla.summary()['slo']['attainment'])

    def test_closed_loop_mode_runs_same_topology(self):
        result = run_traffic(strategy='vanilla', seed=0, open_loop=False,
                             **self.QUICK)
        summary = result.summary()
        assert summary['open_loop'] is False
        assert summary['shed'] == 0
        assert summary['slo']['requests'] > 0
        assert summary['router'] is None

    def test_autoscaler_scales_up_and_back_down_with_events(self):
        from repro.traffic.arrivals import DiurnalArrivals
        result = run_traffic(
            strategy='irs', seed=0, autoscale=True, n_hosts=6,
            n_hog_vms=2, n_server_vms=2, rate_rps=3000,
            arrivals=DiurnalArrivals(3000, ramp=(1.4, 1.4, 0.2, 0.2),
                                     period_ns=1 * SEC),
            warmup_ns=300 * MS, measure_ns=1500 * MS)
        summary = result.summary()
        assert summary['autoscaler']['scale_ups'] >= 1
        assert summary['autoscaler']['scale_downs'] >= 1
        kinds = [e['kind'] for e in summary['events']]
        assert 'scale.up' in kinds
        assert 'scale.down' in kinds
        assert 'vm.retire' in kinds
        # Every scale decision is in the structured log.
        assert (kinds.count('scale.up')
                == summary['autoscaler']['scale_ups'])
        assert (kinds.count('scale.down')
                == summary['autoscaler']['scale_downs'])

    def test_bursty_arrivals_accepted(self):
        result = run_traffic(strategy='irs', seed=1, arrivals='bursty',
                             **self.QUICK)
        assert result.summary()['arrivals'] == 'bursty'
        assert result.summary()['slo']['requests'] > 0


class TestTrafficSpecPipeline:
    def test_spec_validates_vocabulary(self):
        with pytest.raises(SpecError):
            traffic_spec(arrivals='tidal')
        with pytest.raises(SpecError):
            traffic_spec(router='hash_ring')
        with pytest.raises(SpecError):
            traffic_spec(rate_rps=0)
        with pytest.raises(SpecError):
            traffic_spec(max_replicas=1, n_server_vms=4)

    def test_spec_is_frozen_and_cache_keyable(self):
        spec = traffic_spec(strategy='irs', rate_rps=2000)
        assert spec.cache_token() != traffic_spec(strategy='irs').cache_token()
        assert spec == traffic_spec(strategy='irs', rate_rps=2000)

    def test_executor_runs_traffic_spec(self):
        spec = traffic_spec(strategy='irs', seed=0, n_hosts=2,
                            n_hog_vms=2, n_server_vms=2, rate_rps=1200,
                            warmup_ns=200 * MS, measure_ns=300 * MS)
        outcome = run_specs([spec], cache=None)[0]
        assert outcome.throughput > 0
        assert outcome.cluster['slo']['requests'] > 0
        assert outcome.cluster['open_loop'] is True

    def test_figure_registered(self):
        from repro.experiments.figures import ALL_FIGURES
        import inspect
        assert 'traffic_slo' in ALL_FIGURES
        params = inspect.signature(ALL_FIGURES['traffic_slo']).parameters
        assert 'arrivals' in params and 'rate_rps' in params

    def test_cli_rejects_unknown_arrivals(self, capsys):
        from repro.experiments.cli import main
        with pytest.raises(SystemExit):
            main(['traffic-slo', '--arrivals', 'tidal'])
        assert 'unknown arrival process' in capsys.readouterr().err
