"""Tests for the runstate timeline recorder."""

from repro.metrics import TimelineRecorder
from repro.simkernel.units import MS, SEC
from repro.workloads import cpu_hog

from conftest import build_machine, build_vm


def contended(sim):
    machine = build_machine(sim, 1)
    vm_a, ka = build_vm(sim, machine, 'a', pinning=[0])
    vm_b, kb = build_vm(sim, machine, 'b', pinning=[0])
    ka.spawn('ha', cpu_hog(10 * MS))
    kb.spawn('hb', cpu_hog(10 * MS))
    machine.start()
    return machine, vm_a, vm_b


class TestSampling:
    def test_samples_accumulate(self, sim):
        machine, vm_a, vm_b = contended(sim)
        recorder = TimelineRecorder(sim, machine, period_ns=5 * MS).start()
        sim.run_until(500 * MS)
        assert 90 <= len(recorder.samples) <= 101

    def test_first_sample_captures_start_state(self, sim):
        machine, vm_a, vm_b = contended(sim)
        recorder = TimelineRecorder(sim, machine, period_ns=5 * MS).start()
        sim.run_until(1 * MS)
        # The first sample fires at the start instant, not one period in.
        assert recorder.samples
        assert recorder.samples[0].time == 0

    def test_stop_halts_sampling(self, sim):
        machine, vm_a, vm_b = contended(sim)
        recorder = TimelineRecorder(sim, machine, period_ns=5 * MS).start()
        sim.run_until(100 * MS)
        recorder.stop()
        count = len(recorder.samples)
        sim.run_until(300 * MS)
        assert len(recorder.samples) == count

    def test_max_samples_cap(self, sim):
        machine, vm_a, vm_b = contended(sim)
        recorder = TimelineRecorder(sim, machine, period_ns=1 * MS,
                                    max_samples=10).start()
        sim.run_until(1 * SEC)
        assert len(recorder.samples) == 10


class TestAnalysis:
    def test_occupancy_splits_between_competitors(self, sim):
        machine, vm_a, vm_b = contended(sim)
        recorder = TimelineRecorder(sim, machine, period_ns=1 * MS).start()
        sim.run_until(2 * SEC)
        occupancy = recorder.occupancy('a.v0')
        assert 0.35 < occupancy.get('running', 0) < 0.65
        assert 0.35 < occupancy.get('runnable', 0) < 0.65

    def test_occupancy_unknown_vcpu_empty(self, sim):
        machine, vm_a, vm_b = contended(sim)
        recorder = TimelineRecorder(sim, machine).start()
        sim.run_until(100 * MS)
        assert recorder.occupancy('ghost.v9') == {}

    def test_colocation_zero_when_pinned_apart(self, sim):
        machine = build_machine(sim, 2)
        vm, kernel = build_vm(sim, machine, n_vcpus=2, pinning=[0, 1])
        kernel.spawn('w0', cpu_hog(10 * MS), gcpu_index=0)
        kernel.spawn('w1', cpu_hog(10 * MS), gcpu_index=1)
        machine.start()
        recorder = TimelineRecorder(sim, machine).start()
        sim.run_until(300 * MS)
        assert recorder.colocation_fraction(vm) == 0.0


class TestRendering:
    def test_render_contains_all_vcpus(self, sim):
        machine, vm_a, vm_b = contended(sim)
        recorder = TimelineRecorder(sim, machine, period_ns=2 * MS).start()
        sim.run_until(500 * MS)
        art = recorder.render(width=40)
        assert 'a.v0' in art and 'b.v0' in art
        assert '#' in art and '.' in art

    def test_render_empty(self, sim):
        machine, vm_a, vm_b = contended(sim)
        recorder = TimelineRecorder(sim, machine)
        assert recorder.render() == '(no samples)'
